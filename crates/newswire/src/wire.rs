//! Wire messages of the NewsWire protocol.

use std::sync::Arc;

use amcast::{BaselineHint, FilterSpec, RangeSummary};
use astrolabe::{Certificate, GossipMsg, KeyId, RotationRecord, Signature, ZoneId};
use filters::fnv1a;
use newsml::cdc;
use newsml::{ItemId, NewsItem, PublisherId};
use simnet::Payload;

use crate::auth::{EpochAttest, PublisherCredential};

/// Delta-encoding annotation on an item-bearing message: "this body is
/// encoded as a CDC delta against revision `revision` (length `body_len`)
/// of the same story". The sender only attaches one when it believes the
/// receiver holds that baseline (its own prior publication on the tree
/// path, or a [`BaselineHint`] the requester declared); a receiver that
/// does not is charged the chunk-miss makeup (see `bytes_wire`). `None`
/// everywhere when deltas are off, keeping the wire byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaBasis {
    /// Baseline revision the delta references.
    pub revision: u32,
    /// Baseline body length (needed to re-derive the synthetic body).
    pub body_len: u32,
}

impl DeltaBasis {
    /// Serialized size of the annotation (revision + baseline length).
    pub const WIRE_SIZE: usize = 8;
}

/// Effective encoded size of `item`'s body given an optional delta basis:
/// the full body when unannotated, the priced CDC delta when annotated
/// (never larger than full — senders fall back).
fn body_cost(item: &NewsItem, basis: Option<&DeltaBasis>) -> usize {
    match basis {
        None => item.body_len as usize,
        Some(b) => cdc::delta_cost_memo(
            item.id.publisher,
            &item.slug,
            b.revision,
            b.body_len,
            item.revision,
            item.body_len,
        )
        .effective(),
    }
}

/// A signed, routable news item.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The item itself (metadata + body size).
    pub item: NewsItem,
    /// Dissemination id (derived from the item id; drives dedup).
    pub msg_id: u64,
    /// Per-hop interest filter, precomputed by the publisher.
    pub filter: FilterSpec,
    /// The zone the publisher addressed (for scope verification).
    pub scope: ZoneId,
    /// Publisher certificate (so any forwarder can verify).
    pub certificate: Certificate,
    /// Signing key id.
    pub key: KeyId,
    /// Signature over the item.
    pub signature: Signature,
    /// The publisher's signed epoch attestation at publish time (DESIGN
    /// §12): every envelope refreshes the receivers' signed epoch
    /// authority, starving fabricated-epoch collusion of oxygen.
    pub attest: EpochAttest,
    /// Delta-encoding basis: the publisher's previously disseminated
    /// revision of the same story, which tree receivers hold.
    pub basis: Option<DeltaBasis>,
}

impl Envelope {
    /// Approximate serialized size (full body — the `bytes_sent` model).
    pub fn wire_size(&self) -> usize {
        self.item.wire_size()
            + 8
            + self.filter.wire_size()
            + 2 * self.scope.depth()
            + 96
            + self.attest.wire_size()
            + self.basis.map_or(0, |_| DeltaBasis::WIRE_SIZE)
        // certificate + signature + key id
    }

    /// Serialized size with the body delta-encoded against the basis
    /// (the `bytes_wire` model; equals [`Envelope::wire_size`] when
    /// unannotated).
    pub fn compressed_wire_size(&self) -> usize {
        self.wire_size() - self.item.body_len as usize + body_cost(&self.item, self.basis.as_ref())
    }
}

/// A bare item traveling outside an envelope — repair replies, reconcile
/// replies, joiner state transfer — with the publisher's detached signature
/// attached, so every admission path can verify before caching (DESIGN
/// §12). Before this, bare-item paths were an unsigned side door.
#[derive(Debug, Clone)]
pub struct SignedItem {
    /// The item.
    pub item: NewsItem,
    /// Signing key id.
    pub key: KeyId,
    /// The publisher's signature over the item bytes.
    pub signature: Signature,
    /// Delta-encoding basis: the baseline the requester declared holding
    /// (via [`BaselineHint`]) that this item was encoded against.
    pub basis: Option<DeltaBasis>,
}

impl SignedItem {
    /// Approximate serialized size: item + key id + signature (full body —
    /// the `bytes_sent` model).
    pub fn wire_size(&self) -> usize {
        self.item.wire_size() + 16 + self.basis.map_or(0, |_| DeltaBasis::WIRE_SIZE)
    }

    /// Serialized size with the body delta-encoded against the basis
    /// (the `bytes_wire` model).
    pub fn compressed_wire_size(&self) -> usize {
        self.wire_size() - self.item.body_len as usize + body_cost(&self.item, self.basis.as_ref())
    }
}

/// The globally unique dissemination id of an item.
pub fn msg_id_of(id: ItemId) -> u64 {
    let mut bytes = [0u8; 10];
    bytes[..2].copy_from_slice(&id.publisher.0.to_le_bytes());
    bytes[2..].copy_from_slice(&id.seq.to_le_bytes());
    fnv1a(&bytes)
}

/// NewsWire protocol messages.
#[derive(Debug, Clone)]
pub enum NewsWireMsg {
    /// Astrolabe gossip, optionally carrying the sender's most recently
    /// adopted trust-root rotation record as a rider (DESIGN §15). `None`
    /// in runs with no rotations — the wire stays byte-identical to builds
    /// that predate trust-root rotation.
    Gossip {
        /// The embedded Astrolabe exchange.
        g: GossipMsg,
        /// Rotation rider: the newest revocation/rotation record this node
        /// has adopted, re-announced on every gossip exchange so revocation
        /// reaches even nodes whose zone rows never carry the `sys$rot:`
        /// attribute.
        rot: Option<Arc<RotationRecord>>,
    },
    /// Trust-root rotation: a registry-endorsed record revoking a
    /// publisher's key epoch and endorsing its successor certificate.
    /// Injected externally at the publisher (with the replacement
    /// credential) and at a few seed subscribers (record only); from there
    /// the record propagates epidemically via gossip riders and `sys$rot:`
    /// row attributes.
    Rotate {
        /// The signed revocation/rotation record.
        record: RotationRecord,
        /// The successor signing credential — only for the publisher node
        /// itself, which must re-key before its next publish.
        credential: Option<PublisherCredential>,
    },
    /// External input to a publisher node: publish this item.
    PublishRequest {
        /// The item (the publisher stamps issue time and signs it).
        item: NewsItem,
        /// Optional scope override (defaults to the certificate scope).
        scope: Option<ZoneId>,
        /// Optional dissemination predicate over child-zone summary rows
        /// (the §8 extension, e.g. `premium > 0`). Invalid SQL rejects the
        /// publish request.
        predicate: Option<String>,
    },
    /// Cover `zone` with the enveloped item.
    Forward {
        /// The signed item.
        env: Envelope,
        /// The zone the receiver must cover.
        zone: ZoneId,
    },
    /// Final hop to a leaf-zone member.
    Deliver {
        /// The signed item.
        env: Envelope,
    },
    /// A representative's receipt for a `Forward`: it has taken coverage
    /// duty for `zone` (or already held it). Any representative's ack
    /// settles every pending hand-off of `(msg_id, zone)` at the sender —
    /// with redundancy `k`, one success covers the zone.
    ForwardAck {
        /// Dissemination id of the acknowledged item.
        msg_id: u64,
        /// The zone whose coverage is acknowledged.
        zone: ZoneId,
    },
    /// Cache anti-entropy: "what do you have past these marks?"
    RepairRequest {
        /// Requester's per-publisher high-water marks.
        highwater: Vec<(PublisherId, u64)>,
        /// Set by (re)joining nodes to receive a recent-window snapshot
        /// (the §9 "limited state transfer").
        want_snapshot: bool,
        /// Revisions the requester already holds, so the responder can
        /// delta-encode its reply. Empty with deltas off.
        baselines: Vec<BaselineHint>,
    },
    /// Items the responder holds beyond the requester's marks, each with
    /// its publisher signature so the requester can verify before caching.
    RepairReply {
        /// The repair batch.
        items: Vec<SignedItem>,
    },
    /// Log anti-entropy pull: "ship me these sequence ranges of
    /// `publisher`'s articles". Sent when a gossiped `sys$ae:` digest (or
    /// the node's own log) reveals holes the margin-backed repair path
    /// cannot see.
    ReconcileRequest {
        /// The publisher whose log is being reconciled.
        publisher: PublisherId,
        /// The requester's history epoch (responders on older epochs have
        /// nothing useful).
        epoch: u32,
        /// Inclusive `(lo, hi)` sequence ranges wanted.
        ranges: Vec<(u64, u64)>,
        /// Also ship anything at or past this mark — tail catch-up for
        /// items the requester does not yet know exist.
        tail_from: u64,
        /// Revisions of this publisher's stories the requester already
        /// holds: the responder delta-encodes any item whose story the
        /// requester has an earlier telling of, instead of re-shipping the
        /// full body a digest already proved mostly redundant. Empty with
        /// deltas off.
        baselines: Vec<BaselineHint>,
    },
    /// The responder's answer: whatever it still holds of the requested
    /// ranges, plus its own digest so the requester can settle holes the
    /// responder vouches are unservable (revision-fused or evicted).
    ReconcileReply {
        /// The publisher reconciled.
        publisher: PublisherId,
        /// The responder's digest at reply time.
        summary: RangeSummary,
        /// The responder's stored publisher-signed epoch attestation, when
        /// it holds one — how signed epoch authority propagates to nodes
        /// the publisher's own envelopes have not reached.
        attest: Option<EpochAttest>,
        /// The recovered items, signed.
        items: Vec<SignedItem>,
    },
}

impl Payload for NewsWireMsg {
    fn wire_size(&self) -> usize {
        4 + match self {
            NewsWireMsg::Gossip { g, rot } => {
                g.wire_size() + rot.as_ref().map_or(0, |r| r.encode().len())
            }
            NewsWireMsg::Rotate { record, credential } => {
                record.encode().len() + credential.as_ref().map_or(0, |_| 96)
            }
            NewsWireMsg::PublishRequest { item, .. } => item.wire_size(),
            NewsWireMsg::Forward { env, zone } => env.wire_size() + 2 * zone.depth(),
            NewsWireMsg::Deliver { env } => env.wire_size(),
            NewsWireMsg::ForwardAck { zone, .. } => 8 + 2 * zone.depth(),
            NewsWireMsg::RepairRequest { highwater, baselines, .. } => {
                1 + highwater.len() * 10 + baselines.len() * BaselineHint::WIRE_SIZE
            }
            NewsWireMsg::RepairReply { items } => {
                items.iter().map(|i| i.wire_size()).sum::<usize>()
            }
            NewsWireMsg::ReconcileRequest { ranges, baselines, .. } => {
                2 + 4 + 8 + ranges.len() * 16 + baselines.len() * BaselineHint::WIRE_SIZE
            }
            NewsWireMsg::ReconcileReply { items, attest, .. } => {
                2 + 16
                    + attest.map_or(0, |a| a.wire_size())
                    + items.iter().map(|i| i.wire_size()).sum::<usize>()
            }
        }
    }

    fn compressed_wire_size(&self) -> usize {
        // Only item-bearing messages shrink under delta encoding; every
        // other variant (and every unannotated item) prices identically to
        // `wire_size`, so `bytes_wire == bytes_sent` wherever no delta
        // applies.
        match self {
            NewsWireMsg::Forward { env, zone } => 4 + env.compressed_wire_size() + 2 * zone.depth(),
            NewsWireMsg::Deliver { env } => 4 + env.compressed_wire_size(),
            NewsWireMsg::RepairReply { items } => {
                4 + items.iter().map(|i| i.compressed_wire_size()).sum::<usize>()
            }
            NewsWireMsg::ReconcileReply { items, attest, .. } => {
                4 + 2
                    + 16
                    + attest.map_or(0, |a| a.wire_size())
                    + items.iter().map(|i| i.compressed_wire_size()).sum::<usize>()
            }
            other => other.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_ids_unique_across_publishers_and_seqs() {
        let a = msg_id_of(ItemId::new(PublisherId(1), 7));
        let b = msg_id_of(ItemId::new(PublisherId(2), 7));
        let c = msg_id_of(ItemId::new(PublisherId(1), 8));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, msg_id_of(ItemId::new(PublisherId(1), 7)), "deterministic");
    }

    #[test]
    fn wire_sizes_scale_with_item() {
        let small = NewsWireMsg::RepairRequest {
            highwater: vec![],
            want_snapshot: false,
            baselines: vec![],
        };
        let big = NewsWireMsg::RepairReply {
            items: vec![SignedItem {
                item: NewsItem::builder(PublisherId(0), 0).body_len(5000).build(),
                key: KeyId(1),
                signature: Signature(2),
                basis: None,
            }],
        };
        assert!(small.wire_size() < 16);
        assert!(big.wire_size() > 5000);
        assert_eq!(small.compressed_wire_size(), small.wire_size());
        assert_eq!(big.compressed_wire_size(), big.wire_size(), "no basis, no delta");
    }

    #[test]
    fn delta_basis_shrinks_compressed_size_only() {
        let item = NewsItem::builder(PublisherId(2), 9)
            .slug("merger")
            .revision(3, None)
            .body_len(6000)
            .build();
        let full =
            SignedItem { item: item.clone(), key: KeyId(1), signature: Signature(2), basis: None };
        let delta = SignedItem {
            item,
            key: KeyId(1),
            signature: Signature(2),
            basis: Some(DeltaBasis { revision: 2, body_len: 6000 }),
        };
        // `bytes_sent` prices the full body either way (plus the tiny
        // annotation); `bytes_wire` collapses to the changed chunks.
        assert_eq!(delta.wire_size(), full.wire_size() + DeltaBasis::WIRE_SIZE);
        assert_eq!(full.compressed_wire_size(), full.wire_size());
        assert!(
            delta.compressed_wire_size() < full.wire_size() / 2,
            "adjacent-revision delta: {} vs {}",
            delta.compressed_wire_size(),
            full.wire_size()
        );
        let msg = NewsWireMsg::RepairReply { items: vec![delta] };
        assert!(msg.compressed_wire_size() < msg.wire_size());
    }
}
