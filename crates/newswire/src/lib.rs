//! # newswire — collaborative peer-to-peer news delivery
//!
//! The paper's primary contribution: a push-based publish/subscribe system
//! for real-time news, built entirely out of cooperating end nodes on top
//! of the Astrolabe hierarchy — no dedicated servers, robust to publisher
//! overload, delivering to very large subscriber populations "within tens
//! of seconds of the moment of publishing".
//!
//! Pieces, bottom-up:
//!
//! * [`Subscription`] — per-publisher categories, subject subtrees, and the
//!   §8 SQL predicate over item metadata; renders itself into Bloom bits or
//!   category masks for the tree summaries.
//! * [`MessageCache`] — the §9 end-system cache: revision fusion, GC,
//!   repair, state transfer to joiners.
//! * [`PublisherCredential`] / [`issue_publisher`] / [`verify_item`] — the
//!   §8 publisher authentication flows.
//! * [`TokenBucket`] — publisher flow control.
//! * [`NewsWireNode`] — the composed end-system node.
//! * [`DeploymentBuilder`] / [`Deployment`] — whole-network assembly.
//! * [`RssChannel`] / [`RssIngestAgent`] — the §10 RSS bootstrap agents;
//!   [`mod@xmlrpc`] — the §10 XML-RPC integration gateway.
//!
//! # Quickstart
//!
//! ```
//! use newsml::{NewsItem, PublisherId, Category};
//! use newswire::tech_news_deployment;
//! use simnet::SimTime;
//!
//! let mut deployment = tech_news_deployment(60, 42);
//! deployment.settle(60); // let gossip converge
//!
//! let item = NewsItem::builder(PublisherId(0), 0)
//!     .headline("Astrolabe powers NewsWire")
//!     .category(Category::Technology)
//!     .build();
//! deployment.publish(SimTime::from_secs(60), item.clone());
//! deployment.settle(20);
//!
//! let interested = deployment.interested_nodes(&item);
//! let delivered = deployment.delivered_nodes(&item);
//! assert!(!interested.is_empty());
//! assert_eq!(interested, delivered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agents;
mod auth;
mod cache;
mod config;
mod deploy;
mod flow;
mod node;
mod oracle;
mod persist;
mod subscription;
mod wire;
pub mod xmlrpc;

pub use agents::{RssChannel, RssEntry, RssIngestAgent};
pub use auth::{
    issue_publisher, verify_bare_item, verify_epoch_attest, verify_item, EpochAttest,
    PublisherCredential,
};
pub use cache::{CacheOutcome, CachePolicy, MessageCache};
pub use config::{NewsWireConfig, SubscriptionModel};
pub use deploy::{tech_news_deployment, Deployment, DeploymentBuilder, PublisherSpec};
pub use flow::TokenBucket;
pub use node::{DeliveryRecord, NewsWireNode, NodeStats, PublisherState, AE_ATTR_PREFIX};
pub use oracle::{
    check_invariants, collusion_breaking_point, self_stabilized, OracleReport, StabilizationReport,
    Violation,
};
pub use subscription::{item_position_groups, ItemRow, Subscription};
pub use wire::{msg_id_of, Envelope, NewsWireMsg, SignedItem};

#[cfg(test)]
mod proptests {
    use super::*;
    use newsml::{Category, NewsItem, PublisherId, Subject};
    use proptest::prelude::*;

    fn arb_item() -> impl Strategy<Value = NewsItem> {
        (
            0u16..4,
            0u64..100,
            proptest::collection::vec(0u8..12, 1..3),
            proptest::collection::vec((1u16..13, 1u16..40), 0..2),
        )
            .prop_map(|(p, seq, cats, subs)| {
                let mut b = NewsItem::builder(PublisherId(p), seq).headline("h");
                for c in cats {
                    b = b.category(Category::from_bit(c).unwrap());
                }
                for (top, topic) in subs {
                    b = b.subject(Subject::new(vec![top, topic]));
                }
                b.build()
            })
    }

    fn arb_subscription() -> impl Strategy<Value = Subscription> {
        (
            proptest::collection::vec((0u16..4, 0u8..12), 0..4),
            proptest::collection::vec(1u16..13, 0..3),
        )
            .prop_map(|(cats, subs)| {
                let mut s = Subscription::new();
                for (p, c) in cats {
                    s.subscribe_category(PublisherId(p), Category::from_bit(c).unwrap());
                }
                for top in subs {
                    s.subscribe_subject(Subject::new(vec![top]));
                }
                s
            })
    }

    proptest! {
        /// Soundness of the Bloom summary: whenever the exact subscription
        /// matches an item, the subscriber's Bloom bits admit at least one
        /// of the item's position groups (no false negatives anywhere in
        /// the tree, since parents hold supersets of these bits).
        #[test]
        fn bloom_summary_has_no_false_negatives(
            item in arb_item(),
            sub in arb_subscription(),
        ) {
            if sub.interested_in(&item) {
                let bits = sub.to_bloom(1024, 3);
                let groups = item_position_groups(&item, 1024, 3);
                prop_assert!(
                    groups.iter().any(|g| g.iter().all(|&p| bits.get(p))),
                    "matching item pruned by Bloom summary"
                );
            }
        }

        /// Same soundness for the category-mask prototype.
        #[test]
        fn mask_summary_has_no_false_negatives(
            item in arb_item(),
            sub in arb_subscription(),
        ) {
            let cat_hit = sub.publishers.iter().any(|(p, cats)| {
                *p == item.id.publisher && item.categories.iter().any(|c| cats.contains(c))
            });
            if cat_hit {
                let mask = sub.mask_for(item.id.publisher);
                let item_mask: u64 =
                    item.categories.iter().fold(0, |m, c| m | 1 << c.bit());
                prop_assert!(mask.0 & item_mask != 0);
            }
        }

        /// msg ids collide for equal item ids only (within tested space).
        #[test]
        fn msg_ids_injective_on_small_space(
            a_pub in 0u16..50, a_seq in 0u64..1000,
            b_pub in 0u16..50, b_seq in 0u64..1000,
        ) {
            let a = msg_id_of(newsml::ItemId::new(PublisherId(a_pub), a_seq));
            let b = msg_id_of(newsml::ItemId::new(PublisherId(b_pub), b_seq));
            if (a_pub, a_seq) != (b_pub, b_seq) {
                prop_assert_ne!(a, b);
            } else {
                prop_assert_eq!(a, b);
            }
        }

        /// Cache fusion never retains two revisions of the same story.
        #[test]
        fn cache_single_revision_per_story(revs in proptest::collection::vec((0u64..30, 0u32..5), 1..40)) {
            let mut cache = MessageCache::default();
            for (i, (seq_base, rev)) in revs.iter().enumerate() {
                let item = NewsItem::builder(PublisherId(0), seq_base * 10 + u64::from(*rev))
                    .headline("story")
                    .slug(format!("slug-{}", seq_base % 5))
                    .revision(*rev, None)
                    .build();
                cache.insert(item, simnet::SimTime::from_secs(i as u64));
            }
            let mut slugs: Vec<&str> = cache.iter().map(|i| i.slug.as_str()).collect();
            let total = slugs.len();
            slugs.sort_unstable();
            slugs.dedup();
            prop_assert_eq!(slugs.len(), total, "duplicate story retained");
        }
    }
}
