//! Deployment configuration and the paper's two target configurations
//! (§10): technical news (Slashdot, Wired, The Register, News.com) and
//! general news (Reuters, AP, The New York Times).

use amcast::Strategy;
use astrolabe::AggSpec;
use newsml::PublisherId;
use simnet::SimDuration;

use crate::cache::CachePolicy;

/// How subscriptions are summarized up the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionModel {
    /// The §6 Bloom-filter design: one shared bit array of `bits` bits with
    /// `hashes` hash functions, OR-aggregated as attribute `subs`.
    Bloom {
        /// Bit-array size (the paper suggests "a thousand bits or more").
        bits: usize,
        /// Hash functions per key.
        hashes: u32,
    },
    /// The §7 early-prototype design: one exact category bitmask per
    /// publisher, OR-aggregated as attributes `cats$<publisher>`.
    CategoryMask,
}

impl SubscriptionModel {
    /// The attribute name carrying this model's summary for `publisher`
    /// (mask model) or for everyone (Bloom model).
    pub fn attr_for(&self, publisher: PublisherId) -> String {
        match self {
            SubscriptionModel::Bloom { .. } => "subs".to_owned(),
            SubscriptionModel::CategoryMask => format!("cats${}", publisher.0),
        }
    }
}

/// Full NewsWire deployment configuration.
#[derive(Debug, Clone)]
pub struct NewsWireConfig {
    /// Underlying Astrolabe parameters (branching, gossip interval, TTL…).
    pub astrolabe: astrolabe::Config,
    /// Subscription summary model.
    pub model: SubscriptionModel,
    /// Representatives used per interested child during forwarding.
    pub redundancy: usize,
    /// Forwarding queue discipline.
    pub strategy: Strategy,
    /// Forwarding service time per message.
    pub service_interval: SimDuration,
    /// End-system cache policy.
    pub cache: CachePolicy,
    /// Period of cache anti-entropy repair (end-to-end reliability, §9);
    /// `None` disables repair.
    pub repair_interval: Option<SimDuration>,
    /// Maximum items shipped per repair reply.
    pub repair_batch: usize,
    /// Whether forwarders verify publisher signatures (§8).
    pub verify_signatures: bool,
    /// Base timeout for acknowledged tree hand-offs: a forwarder arms a
    /// timer per `Forward` it transmits and, absent a `ForwardAck`, retries
    /// with exponential backoff before failing over to another
    /// representative. `None` restores the seed's unacknowledged hand-offs
    /// (a slow-but-alive representative silently blackholes its subtree
    /// until anti-entropy catches it).
    pub ack_timeout: Option<SimDuration>,
    /// Retries against the *same* representative before failing over.
    pub ack_retries: u32,
    /// Backoff multiplier applied to `ack_timeout` per retry.
    pub ack_backoff: u32,
    /// Alternative representatives tried after retries are exhausted;
    /// beyond this the hand-off is abandoned to anti-entropy repair.
    pub ack_max_failovers: u32,
    /// Timeout on repair replies: absent a `RepairReply`, re-target a
    /// different peer instead of idling a full `repair_interval`.
    /// `None` disables re-targeting. Also bounds reconciliation replies.
    pub repair_reply_timeout: Option<SimDuration>,
    /// Log anti-entropy: piggyback per-publisher article-log digests
    /// (`sys$ae:<publisher>` attributes) on gossip rows and pull missing
    /// sequence ranges from the freshest known peer. Separate from
    /// `repair_interval` — the margin-backed repair path only re-offers
    /// items near the high-water mark, while reconciliation closes
    /// arbitrarily deep holes (e.g. everything missed during a partition).
    pub anti_entropy: bool,
    /// Persist protocol state to simulated stable storage (subscription,
    /// incarnation, article-log coverage, cached items, delivery log) so a
    /// `RestartMode::ColdDurable` restart recovers it instead of rejoining
    /// amnesiac. Off by default: write-behind persistence adds disk traffic
    /// every gossip round, and deployments that only ever freeze-restart
    /// (the legacy fault model) get nothing for it.
    pub durable_state: bool,
    /// State-corruption defenses: structural validation of gossiped zone
    /// rows at ingest, a periodic self-audit that re-derives this node's
    /// own advertisements from ground truth and scrubs rows that cannot be
    /// honest, and an epoch fence that refuses log-epoch adoption beyond
    /// the consensus of the node's peers. On by default — the defenses are
    /// deterministic and cost one table sweep per few gossip rounds; E17
    /// runs the ablation with them off.
    pub defenses: bool,
    /// Misbehavior score at which a peer is quarantined (DESIGN §12):
    /// invalid signatures score 2, refused epoch-fence replies and digest
    /// contradictions score 1 each, and a peer at or past this threshold is
    /// treated as suspect for repair, reconciliation, and hand-off
    /// failover until it restarts under a fresh incarnation. Only consulted
    /// when `defenses` is on.
    pub quarantine_threshold: u32,
    /// The delta-everything wire protocol (`NEWSWIRE_DELTAS=1`): revised
    /// envelopes and repair/reconcile replies carry CDC delta annotations
    /// against baselines the receiver holds, requests declare held
    /// revisions as [`amcast::BaselineHint`]s, and the embedded Astrolabe
    /// agent gossips row diffs instead of full digests. Off by default;
    /// with it off every message is byte-identical to builds without the
    /// delta protocol.
    pub deltas: bool,
    /// Sybil admission control (DESIGN §15): leaf-zone member rows must
    /// carry a registry-endorsed join ticket (`sys$jt` attribute), rows
    /// without one are refused at gossip ingest and tracked in a bounded
    /// probation set, and brand-new identities are refused outright once
    /// the leaf zone holds `zone_quota` members. Off by default — it adds
    /// a ticket attribute to every member row, so legacy runs stay
    /// byte-identical.
    pub admission: bool,
    /// Maximum leaf-zone identities admitted when `admission` is on;
    /// beyond this, previously unseen member rows are refused.
    pub zone_quota: usize,
}

impl NewsWireConfig {
    /// The technical-news configuration: a handful of community-site
    /// publishers, modest subscription space, 1k-bit Bloom array.
    pub fn tech_news() -> Self {
        NewsWireConfig {
            astrolabe: astrolabe::Config::standard(),
            model: SubscriptionModel::Bloom { bits: 1024, hashes: 3 },
            redundancy: 2,
            strategy: Strategy::WeightedRoundRobin,
            service_interval: SimDuration::from_micros(500),
            cache: CachePolicy::default(),
            repair_interval: Some(SimDuration::from_secs(10)),
            repair_batch: 64,
            verify_signatures: true,
            ack_timeout: Some(SimDuration::from_secs(2)),
            ack_retries: 1,
            ack_backoff: 2,
            ack_max_failovers: 2,
            repair_reply_timeout: Some(SimDuration::from_secs(3)),
            anti_entropy: true,
            durable_state: false,
            defenses: true,
            quarantine_threshold: 3,
            deltas: simnet::delta_mode(),
            admission: false,
            zone_quota: 64,
        }
    }

    /// The general-news configuration: wire services with richer subject
    /// space, hence a larger Bloom array.
    pub fn global_news() -> Self {
        NewsWireConfig {
            model: SubscriptionModel::Bloom { bits: 4096, hashes: 4 },
            ..NewsWireConfig::tech_news()
        }
    }

    /// The §7 early-prototype configuration (per-publisher category masks).
    pub fn prototype_masks() -> Self {
        NewsWireConfig { model: SubscriptionModel::CategoryMask, ..NewsWireConfig::tech_news() }
    }

    /// The Astrolabe configuration extended with this deployment's
    /// subscription aggregations (one `ORBITS` for the Bloom model, one
    /// `ORINT` per publisher for the mask model).
    pub fn astrolabe_config(&self, publishers: &[PublisherId]) -> astrolabe::Config {
        let mut cfg = self.astrolabe.clone();
        match self.model {
            SubscriptionModel::Bloom { .. } => {
                cfg.aggregations.push(AggSpec::new("subs", "SELECT ORBITS(subs) AS subs"));
            }
            SubscriptionModel::CategoryMask => {
                for p in publishers {
                    let attr = self.model.attr_for(*p);
                    cfg.aggregations.push(AggSpec::new(
                        attr.clone(),
                        format!("SELECT ORINT({attr}) AS {attr}"),
                    ));
                }
            }
        }
        cfg
    }
}

impl Default for NewsWireConfig {
    fn default() -> Self {
        NewsWireConfig::tech_news()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let tech = NewsWireConfig::tech_news();
        let global = NewsWireConfig::global_news();
        assert_eq!(tech.model, SubscriptionModel::Bloom { bits: 1024, hashes: 3 });
        assert_eq!(global.model, SubscriptionModel::Bloom { bits: 4096, hashes: 4 });
        assert!(tech.verify_signatures);
    }

    #[test]
    fn bloom_aggregation_added() {
        let cfg = NewsWireConfig::tech_news().astrolabe_config(&[PublisherId(0)]);
        assert!(cfg.aggregations.iter().any(|a| a.program.contains("ORBITS(subs)")));
    }

    #[test]
    fn mask_aggregations_per_publisher() {
        let cfg =
            NewsWireConfig::prototype_masks().astrolabe_config(&[PublisherId(0), PublisherId(3)]);
        assert!(cfg.aggregations.iter().any(|a| a.program.contains("ORINT(cats$0)")));
        assert!(cfg.aggregations.iter().any(|a| a.program.contains("ORINT(cats$3)")));
        // All generated programs must compile.
        for a in &cfg.aggregations {
            astrolabe::parse_program(&a.program).unwrap();
        }
    }

    #[test]
    fn attr_names() {
        let bloom = SubscriptionModel::Bloom { bits: 8, hashes: 1 };
        assert_eq!(bloom.attr_for(PublisherId(7)), "subs");
        assert_eq!(SubscriptionModel::CategoryMask.attr_for(PublisherId(7)), "cats$7");
    }
}
