//! Publisher flow control (paper §8): a token bucket per publisher, sized
//! from the rate claim in its certificate. "The selection and filtering
//! mechanisms used in each forwarding component protect the system from
//! flooding by publishers."

use simnet::SimTime;

/// A token bucket on simulated time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_us: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket allowing `rate_per_min` sustained items per minute
    /// with a burst allowance of `burst` items. The bucket starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_min` or `burst` is zero.
    pub fn new(rate_per_min: u32, burst: u32) -> Self {
        assert!(rate_per_min > 0, "rate must be positive");
        assert!(burst > 0, "burst must be positive");
        TokenBucket {
            rate_per_us: f64::from(rate_per_min) / 60e6,
            burst: f64::from(burst),
            tokens: f64::from(burst),
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = now.since(self.last).as_micros() as f64;
            self.tokens = (self.tokens + dt * self.rate_per_us).min(self.burst);
            self.last = now;
        }
    }

    /// Attempts to spend one token at `now`; `false` means rate-limited.
    pub fn admit(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    #[test]
    fn burst_then_limited() {
        let mut b = TokenBucket::new(60, 3); // 1/s sustained, burst 3
        let t0 = SimTime::from_secs(10);
        assert!(b.admit(t0));
        assert!(b.admit(t0));
        assert!(b.admit(t0));
        assert!(!b.admit(t0), "burst exhausted");
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(60, 1); // 1 token/second
        let t0 = SimTime::from_secs(10);
        assert!(b.admit(t0));
        assert!(!b.admit(t0 + SimDuration::from_millis(400)));
        assert!(b.admit(t0 + SimDuration::from_millis(1100)));
    }

    #[test]
    fn never_exceeds_burst() {
        let mut b = TokenBucket::new(6000, 5);
        let late = SimTime::from_secs(3600);
        assert!((b.available(late) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut b = TokenBucket::new(60, 2);
        assert!(b.admit(SimTime::from_secs(100)));
        // An event carrying an older timestamp must not panic or refill.
        assert!(b.admit(SimTime::from_secs(100)));
        assert!(!b.admit(SimTime::from_secs(100)));
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_rejected() {
        TokenBucket::new(0, 1);
    }
}
