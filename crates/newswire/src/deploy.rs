//! Deployment assembly: builds whole simulated NewsWire networks.
//!
//! This is the entry point examples, tests and the benchmark harness use:
//! it wires up the trust registry, publisher credentials, per-node agents,
//! sampled subscriptions and the network model, and exposes convenience
//! queries over the running simulation.

use std::sync::Arc;

use astrolabe::{RotationRecord, TrustRegistry, ZoneId, ZoneLayout};
use newsml::{Category, NewsItem, PublisherId, PublisherProfile, Zipf};
use rand::rngs::SmallRng;
use rand::Rng;
use simnet::{fork, LatencyModel, NetworkModel, NodeId, SimDuration, SimTime, Simulation, Summary};

use crate::auth::{issue_publisher, PublisherCredential};
use crate::config::NewsWireConfig;
use crate::node::{NewsWireNode, NodeStats};
use crate::subscription::Subscription;
use crate::wire::NewsWireMsg;

/// A publisher to install in the deployment.
#[derive(Debug, Clone)]
pub struct PublisherSpec {
    /// Editorial profile (rate, categories, body sizes).
    pub profile: PublisherProfile,
    /// Allowed publish scope (root = global).
    pub scope: ZoneId,
    /// Flow-control rate (items/minute).
    pub rate_per_min: u32,
    /// Flow-control burst.
    pub burst: u32,
}

impl PublisherSpec {
    /// A spec with global scope and generous flow control.
    pub fn global(profile: PublisherProfile) -> Self {
        PublisherSpec { profile, scope: ZoneId::root(), rate_per_min: 6000, burst: 200 }
    }
}

/// Builder for a simulated NewsWire deployment.
#[derive(Debug)]
pub struct DeploymentBuilder {
    subscribers: u32,
    branching: u16,
    seed: u64,
    config: NewsWireConfig,
    publishers: Vec<PublisherSpec>,
    cats_per_subscriber: usize,
    subject_prob: f64,
    wan: bool,
    drop_prob: f64,
}

impl DeploymentBuilder {
    /// Starts a deployment of `subscribers` subscriber nodes.
    pub fn new(subscribers: u32, seed: u64) -> Self {
        DeploymentBuilder {
            subscribers,
            branching: 16,
            seed,
            config: NewsWireConfig::tech_news(),
            publishers: Vec::new(),
            cats_per_subscriber: 2,
            subject_prob: 0.5,
            wan: false,
            drop_prob: 0.0,
        }
    }

    /// Sets the zone branching factor.
    #[must_use]
    pub fn branching(mut self, b: u16) -> Self {
        self.branching = b;
        self
    }

    /// Replaces the NewsWire configuration.
    #[must_use]
    pub fn config(mut self, config: NewsWireConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds a publisher.
    #[must_use]
    pub fn publisher(mut self, spec: PublisherSpec) -> Self {
        self.publishers.push(spec);
        self
    }

    /// Categories subscribed per subscriber (default 2).
    #[must_use]
    pub fn cats_per_subscriber(mut self, n: usize) -> Self {
        self.cats_per_subscriber = n;
        self
    }

    /// Uses the region-structured WAN latency model, with regions aligned
    /// to top-level zones, plus the given message-drop probability.
    #[must_use]
    pub fn wan(mut self, drop_prob: f64) -> Self {
        self.wan = true;
        self.drop_prob = drop_prob;
        self
    }

    /// Assembles the deployment.
    ///
    /// Publisher nodes take ids `0..P`; subscribers follow. Every node is a
    /// leaf of the same Astrolabe tree (publishers are "just another
    /// Astrolabe leaf node", §8).
    ///
    /// # Panics
    ///
    /// Panics if no publishers were added.
    pub fn build(self) -> Deployment {
        assert!(!self.publishers.is_empty(), "deployment needs at least one publisher");
        let n = self.subscribers + self.publishers.len() as u32;
        let layout = ZoneLayout::new(n, self.branching);

        let mut registry = TrustRegistry::new(self.seed);
        let mut creds = Vec::new();
        for spec in &self.publishers {
            creds.push(issue_publisher(
                &mut registry,
                spec.profile.id,
                &spec.profile.name,
                &spec.scope,
                spec.rate_per_min,
            ));
        }
        // Trust-root rotation (DESIGN §15): while the registry is still
        // mutable, pre-issue one signed rotation record per publisher —
        // revoking the launch key and endorsing a successor whose claims
        // mirror the original credential's. The records sit inert in the
        // deployment until `schedule_rotation` injects one; deployments
        // that never rotate behave exactly as before (issuance touches
        // only the registry's own counter, not the simulation's seed
        // streams).
        let mut rotations = Vec::new();
        for (spec, cred) in self.publishers.iter().zip(&creds) {
            let claims = vec![
                ("publisher".to_owned(), spec.profile.id.0.to_string()),
                ("scope".to_owned(), spec.scope.to_string()),
                ("rate".to_owned(), spec.rate_per_min.to_string()),
            ];
            let (record, key) = registry.issue_rotation(
                cred.certificate.subject.clone(),
                cred.certificate.key,
                0,
                1,
                claims,
            );
            let successor = PublisherCredential::from_parts(record.successor.clone(), key);
            rotations.push((spec.profile.id, record, successor));
        }
        let registry = Arc::new(registry);
        // Signed epoch authority (DESIGN §12): every node ships with the
        // publishers' certificates and epoch-0 attestations pre-installed,
        // the way a real deployment bakes trust anchors into the binary.
        // Later epochs propagate via signed attestations on envelopes and
        // reconcile replies.
        let authority: Vec<_> =
            creds.iter().map(|c| (c.certificate.clone(), c.attest_epoch(0))).collect();

        let publisher_ids: Vec<PublisherId> =
            self.publishers.iter().map(|s| s.profile.id).collect();
        let astro_cfg = {
            let mut c = self.config.astrolabe_config(&publisher_ids);
            c.branching = self.branching;
            c
        };

        let net = if self.wan {
            let region_of: Vec<u32> = (0..n)
                .map(|i| u32::from(layout.leaf_zone(i).path().first().copied().unwrap_or(0)))
                .collect();
            NetworkModel {
                latency: LatencyModel::wan_defaults(region_of),
                drop_prob: self.drop_prob,
                ..NetworkModel::default()
            }
        } else {
            NetworkModel { drop_prob: self.drop_prob, ..NetworkModel::default() }
        };

        let mut contact_rng = fork(self.seed, 0xC0);
        let mut interest_rng = fork(self.seed, 0x1A);
        let mut sim = Simulation::new(net, self.seed);
        let mut publishers = Vec::new();

        for i in 0..n {
            let contacts: Vec<u32> =
                (0..astro_cfg.contact_fanout).map(|_| contact_rng.gen_range(0..n)).collect();
            let agent = astrolabe::Agent::new(i, &layout, astro_cfg.clone(), contacts);
            let mut node = NewsWireNode::new(agent, self.config.clone(), Arc::clone(&registry));
            for (cert, attest) in &authority {
                node.install_publisher_authority(cert.clone(), *attest);
            }
            if (i as usize) < self.publishers.len() {
                let spec_idx = i as usize;
                let spec = &self.publishers[spec_idx];
                node = node.with_publisher(
                    creds[spec_idx].clone(),
                    spec.scope.clone(),
                    spec.rate_per_min,
                    spec.burst,
                );
                // Publishers still publish an (empty) summary row, and
                // advertise high load so they are not elected forwarders.
                node.set_subscription(Subscription::new());
                node.load_bias = 1_000.0;
                publishers.push((spec.profile.id, NodeId(i)));
            } else {
                let sub = sample_subscription(
                    &mut interest_rng,
                    &self.publishers,
                    self.cats_per_subscriber,
                    self.subject_prob,
                );
                node.set_subscription(sub);
            }
            sim.add_node(node);
        }

        Deployment {
            sim,
            layout,
            publishers,
            config: self.config,
            specs: self.publishers,
            rotations,
            revocation_at: None,
        }
    }
}

/// Samples one subscriber's interests across the installed publishers.
fn sample_subscription(
    rng: &mut SmallRng,
    specs: &[PublisherSpec],
    n_cats: usize,
    subject_prob: f64,
) -> Subscription {
    let mut sub = Subscription::new();
    let pub_zipf = Zipf::new(specs.len(), 0.7);
    for _ in 0..n_cats {
        let spec = &specs[pub_zipf.sample(rng)];
        let cat_zipf = Zipf::new(spec.profile.categories.len(), 1.0);
        let cat = spec.profile.categories[cat_zipf.sample(rng)];
        sub.subscribe_category(spec.profile.id, cat);
        if rng.gen::<f64>() < subject_prob {
            // Subject subtree matching the generator's `CAT.topic` scheme.
            let subject = if rng.gen::<f64>() < 0.5 {
                newsml::Subject::new(vec![u16::from(cat.bit()) + 1])
            } else {
                let topics = spec.profile.topics_per_category.max(1);
                let topic_zipf = Zipf::new(topics as usize, 1.1);
                newsml::Subject::new(vec![
                    u16::from(cat.bit()) + 1,
                    topic_zipf.sample(rng) as u16 + 1,
                ])
            };
            sub.subscribe_subject(subject);
        }
    }
    sub
}

/// A running simulated deployment.
#[derive(Debug)]
pub struct Deployment {
    /// The simulation (publishers first, then subscribers).
    pub sim: Simulation<NewsWireNode>,
    /// The zone layout.
    pub layout: ZoneLayout,
    /// `(publisher, node)` pairs.
    pub publishers: Vec<(PublisherId, NodeId)>,
    /// The configuration the deployment was built with.
    pub config: NewsWireConfig,
    specs: Vec<PublisherSpec>,
    /// Pre-issued rotation records and successor credentials, one per
    /// publisher, injectable via [`Deployment::schedule_rotation`].
    rotations: Vec<(PublisherId, RotationRecord, PublisherCredential)>,
    /// When a rotation was injected (the revocation instant), if any. The
    /// invariant oracle reads this to split forged deliveries into
    /// pre-revocation exposure and post-revocation violations.
    pub revocation_at: Option<SimTime>,
}

impl Deployment {
    /// The node hosting `publisher`.
    ///
    /// # Panics
    ///
    /// Panics if the publisher is not part of this deployment.
    pub fn publisher_node(&self, publisher: PublisherId) -> NodeId {
        self.publishers
            .iter()
            .find(|(p, _)| *p == publisher)
            .map(|(_, n)| *n)
            .expect("unknown publisher")
    }

    /// The installed publisher specs.
    pub fn specs(&self) -> &[PublisherSpec] {
        &self.specs
    }

    /// Runs the simulation until membership and subscription summaries have
    /// had `secs` seconds to converge.
    pub fn settle(&mut self, secs: u64) {
        let deadline = self.sim.now() + SimDuration::from_secs(secs);
        self.sim.run_until(deadline);
    }

    /// Schedules a publish request at `at`.
    pub fn publish(&mut self, at: SimTime, item: NewsItem) {
        let node = self.publisher_node(item.id.publisher);
        self.sim.schedule_external(
            at,
            node,
            NewsWireMsg::PublishRequest { item, scope: None, predicate: None },
        );
    }

    /// Schedules a publish request with an explicit scope.
    pub fn publish_scoped(&mut self, at: SimTime, item: NewsItem, scope: ZoneId) {
        let node = self.publisher_node(item.id.publisher);
        self.sim.schedule_external(
            at,
            node,
            NewsWireMsg::PublishRequest { item, scope: Some(scope), predicate: None },
        );
    }

    /// Schedules a publish request with a §8 dissemination predicate over
    /// child-zone summary rows (e.g. `"premium > 0"`).
    pub fn publish_with_predicate(&mut self, at: SimTime, item: NewsItem, predicate: &str) {
        let node = self.publisher_node(item.id.publisher);
        self.sim.schedule_external(
            at,
            node,
            NewsWireMsg::PublishRequest {
                item,
                scope: None,
                predicate: Some(predicate.to_owned()),
            },
        );
    }

    /// Injects `publisher`'s pre-issued rotation record at `at`: the
    /// successor credential goes to the publisher node (which re-keys and
    /// re-attests its current epoch), and bare records go to `seeds`
    /// evenly-spaced subscriber nodes, from which the revocation spreads
    /// epidemically (gossip rider plus `sys$rot:` row attributes). Records
    /// [`Deployment::revocation_at`] for the oracle.
    ///
    /// # Panics
    ///
    /// Panics if the publisher is not part of this deployment.
    pub fn schedule_rotation(&mut self, at: SimTime, publisher: PublisherId, seeds: u32) {
        let (_, record, successor) = self
            .rotations
            .iter()
            .find(|(p, _, _)| *p == publisher)
            .expect("unknown publisher")
            .clone();
        let publisher_node = self.publisher_node(publisher);
        self.sim.schedule_external(
            at,
            publisher_node,
            NewsWireMsg::Rotate { record: record.clone(), credential: Some(successor) },
        );
        let n = self.sim.len() as u32;
        let first_sub = self.publishers.len() as u32;
        let subs = n.saturating_sub(first_sub);
        for k in 0..seeds.min(subs) {
            let node = NodeId(first_sub + k * subs / seeds.max(1));
            self.sim.schedule_external(
                at,
                node,
                NewsWireMsg::Rotate { record: record.clone(), credential: None },
            );
        }
        self.revocation_at = Some(at);
    }

    /// How long the trust root stayed exposed after the revocation was
    /// injected: the time from [`Deployment::revocation_at`] to the last
    /// node's adoption of a rotation record — the epidemic propagation lag
    /// during which not-yet-reached nodes still honor the stolen key.
    /// `None` before any rotation was scheduled.
    pub fn compromise_exposure_window(&self) -> Option<SimDuration> {
        let at = self.revocation_at?;
        let last = self.sim.iter().filter_map(|(_, n)| n.rotation_adopted_at).max().unwrap_or(at);
        Some(last.saturating_since(at))
    }

    /// Nodes whose subscription matches `item` (ground truth, exact).
    pub fn interested_nodes(&self, item: &NewsItem) -> Vec<NodeId> {
        self.sim.iter().filter(|(_, n)| n.subscription.matches(item)).map(|(id, _)| id).collect()
    }

    /// Nodes that delivered `item` to their application.
    pub fn delivered_nodes(&self, item: &NewsItem) -> Vec<NodeId> {
        self.sim.iter().filter(|(_, n)| n.has_item(item.id)).map(|(id, _)| id).collect()
    }

    /// Publish→delivery latencies (seconds) across all deliveries of all
    /// items.
    pub fn delivery_latency_summary(&self) -> Summary {
        let mut s = Summary::new();
        for (_, node) in self.sim.iter() {
            for d in &node.deliveries {
                s.record(d.delivered.saturating_since(d.published).as_secs_f64());
            }
        }
        s
    }

    /// The same latency summary, rebuilt from the telemetry registry's raw
    /// `delivery_latency_us` series instead of walking every node's delivery
    /// log. `None` when instrumentation is compiled out (`obs` feature off)
    /// or nothing has been delivered yet; when `Some`, the quantiles are
    /// identical to [`Deployment::delivery_latency_summary`]'s as long as no
    /// node crashed mid-run (a recovering node clears its delivery log, but
    /// registry samples — like the paper's measurements — survive).
    pub fn delivery_latency_from_registry(&self) -> Option<Summary> {
        if !obs::ENABLED {
            return None;
        }
        let hub = self.sim.telemetry();
        let hub = hub.borrow();
        let samples = hub.merged_series(obs::series::DELIVERY_LATENCY_US);
        if samples.is_empty() {
            return None;
        }
        let mut s = Summary::new();
        for us in samples {
            s.record(us as f64 / 1e6);
        }
        Some(s)
    }

    /// Sum of all nodes' NewsWire counters.
    pub fn total_stats(&self) -> NodeStats {
        let mut t = NodeStats::default();
        for (_, n) in self.sim.iter() {
            let s = n.stats;
            t.delivered += s.delivered;
            t.duplicates += s.duplicates;
            t.bloom_fp_deliveries += s.bloom_fp_deliveries;
            t.predicate_filtered += s.predicate_filtered;
            t.auth_rejects += s.auth_rejects;
            t.publish_denied += s.publish_denied;
            t.route_failures += s.route_failures;
            t.repairs_served += s.repairs_served;
            t.repair_items_sent += s.repair_items_sent;
            t.forwards_sent += s.forwards_sent;
            t.acks_received += s.acks_received;
            t.ack_retries += s.ack_retries;
            t.ack_failovers += s.ack_failovers;
            t.handoffs_abandoned += s.handoffs_abandoned;
            t.repair_retargets += s.repair_retargets;
            t.suspect_failovers += s.suspect_failovers;
            t.reconcile_requests += s.reconcile_requests;
            t.reconcile_items_recv += s.reconcile_items_recv;
            t.reconciles_served += s.reconciles_served;
            t.reconcile_items_sent += s.reconcile_items_sent;
            t.reconcile_bytes_sent += s.reconcile_bytes_sent;
            t.reconcile_retargets += s.reconcile_retargets;
            t.cold_restarts += s.cold_restarts;
            t.recoveries_completed += s.recoveries_completed;
            t.recovery_backfill_items += s.recovery_backfill_items;
            t.forged_rejects += s.forged_rejects;
            t.signed_epoch_refusals += s.signed_epoch_refusals;
            t.peers_quarantined += s.peers_quarantined;
            t.revoked_key_rejects += s.revoked_key_rejects;
            t.retro_purged += s.retro_purged;
            t.probation_holds += s.probation_holds;
            t.peak_queue = t.peak_queue.max(s.peak_queue);
        }
        t
    }
}

/// A ready-made two-publisher technical-news deployment (the paper's first
/// target configuration), used by examples and tests.
pub fn tech_news_deployment(subscribers: u32, seed: u64) -> Deployment {
    DeploymentBuilder::new(subscribers, seed)
        .branching(8)
        .config(NewsWireConfig::tech_news())
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .publisher(PublisherSpec::global(PublisherProfile::boutique(
            PublisherId(1),
            "the-register",
            Category::Technology,
        )))
        .build()
}
