//! Publisher authentication (paper §8).
//!
//! "News producers would download and run a different application capable
//! of publishing information according to a restrictive set of rules. These
//! restrictions are necessary to handle the authentication of publishers,
//! to assure the authenticity of the data they publish, and to perform flow
//! control."
//!
//! Built on the simulated certificate substrate in [`astrolabe`]: the
//! deployment's [`TrustRegistry`] (standing in for a PKI root) issues each
//! publisher a certificate carrying its id, allowed publish scope and rate
//! limit; every forwarder verifies item signatures before spending
//! forwarding work on them.

use astrolabe::{Certificate, KeyId, SecretKey, Signature, TrustRegistry, ZoneId};
use newsml::{NewsItem, PublisherId};

/// A publisher's signing credential: CA-issued certificate plus its key.
#[derive(Debug, Clone)]
pub struct PublisherCredential {
    /// The CA-signed certificate (public part).
    pub certificate: Certificate,
    key: SecretKey,
}

/// Canonical byte encoding of the signed portion of an item.
fn item_bytes(item: &NewsItem) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + item.headline.len());
    out.extend_from_slice(&item.id.publisher.0.to_le_bytes());
    out.extend_from_slice(&item.id.seq.to_le_bytes());
    out.extend_from_slice(&item.revision.to_le_bytes());
    out.extend_from_slice(item.headline.as_bytes());
    out.push(0);
    out.extend_from_slice(item.slug.as_bytes());
    out.push(item.urgency.level());
    for c in &item.categories {
        out.push(c.bit());
    }
    for (k, v) in &item.meta {
        out.extend_from_slice(k.as_bytes());
        out.push(b'=');
        out.extend_from_slice(v.as_bytes());
        out.push(0);
    }
    out
}

/// Canonical byte encoding of a signed epoch attestation (DESIGN §12): the
/// publisher's statement "my log is at epoch `e`", which the epoch fence
/// trusts over any unsigned neighbor consensus.
fn epoch_bytes(publisher: PublisherId, epoch: u32) -> [u8; 10] {
    let mut out = [0u8; 10];
    out[..4].copy_from_slice(b"ep$\0");
    out[4..6].copy_from_slice(&publisher.0.to_le_bytes());
    out[6..].copy_from_slice(&epoch.to_le_bytes());
    out
}

/// A publisher-signed epoch attestation. Carried on every envelope a
/// publisher emits and echoed in reconcile replies, so signed epoch
/// authority reaches every node that has ever heard from the publisher —
/// and a colluding zone majority voting a fabricated epoch has nothing to
/// show for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochAttest {
    /// The attesting publisher.
    pub publisher: PublisherId,
    /// The attested log epoch.
    pub epoch: u32,
    /// Signing key id.
    pub key: KeyId,
    /// Signature over the canonical `ep$` epoch byte encoding.
    pub signature: Signature,
}

impl EpochAttest {
    /// Simulated wire size: publisher + epoch + key + signature.
    pub fn wire_size(&self) -> usize {
        2 + 4 + 8 + 8
    }
}

/// Verifies an epoch attestation against the publisher's known certificate.
/// The certificate must be one already trusted for `attest.publisher` — an
/// attacker cannot smuggle authority by pairing a fabricated attestation
/// with its own (valid) certificate for a different publisher id.
pub fn verify_epoch_attest(
    registry: &TrustRegistry,
    cert: &Certificate,
    attest: &EpochAttest,
) -> bool {
    if cert.key != attest.key {
        return false;
    }
    match cert.claim("publisher").and_then(|v| v.parse::<u16>().ok()) {
        Some(p) if PublisherId(p) == attest.publisher => {}
        _ => return false,
    }
    registry.verify_with_certificate(
        cert,
        &epoch_bytes(attest.publisher, attest.epoch),
        attest.signature,
    )
}

impl PublisherCredential {
    /// Assembles a credential from a certificate and its secret key.
    ///
    /// Two callers: the deployment builder pairing a rotation record's
    /// successor certificate with its key, and the fault engine pairing a
    /// publisher's real certificate with a key *stolen* from the registry
    /// (the signatures it produces are indistinguishable from the
    /// publisher's own — that is the attack).
    pub fn from_parts(certificate: Certificate, key: SecretKey) -> Self {
        PublisherCredential { certificate, key }
    }

    /// The publisher id bound into the certificate.
    ///
    /// # Panics
    ///
    /// Panics if the certificate lacks a valid `publisher` claim (cannot
    /// happen for certificates issued by [`issue_publisher`]).
    pub fn publisher(&self) -> PublisherId {
        PublisherId(
            self.certificate
                .claim("publisher")
                .and_then(|v| v.parse().ok())
                .expect("certificate carries a publisher claim"),
        )
    }

    /// Signs an item.
    pub fn sign(&self, item: &NewsItem) -> Signature {
        self.key.sign(&item_bytes(item))
    }

    /// The key id forwarders verify against.
    pub fn key_id(&self) -> KeyId {
        self.key.id
    }

    /// Signs an epoch attestation for the publisher's current log epoch.
    pub fn attest_epoch(&self, epoch: u32) -> EpochAttest {
        let publisher = self.publisher();
        EpochAttest {
            publisher,
            epoch,
            key: self.key.id,
            signature: self.key.sign(&epoch_bytes(publisher, epoch)),
        }
    }
}

/// Issues a publisher certificate binding `publisher` to a publish `scope`
/// and a flow-control rate (items/minute).
pub fn issue_publisher(
    registry: &mut TrustRegistry,
    publisher: PublisherId,
    name: &str,
    scope: &ZoneId,
    rate_per_min: u32,
) -> PublisherCredential {
    let claims = vec![
        ("publisher".to_owned(), publisher.0.to_string()),
        ("scope".to_owned(), scope.to_string()),
        ("rate".to_owned(), rate_per_min.to_string()),
    ];
    let (certificate, key) = registry.issue_certificate(format!("publisher:{name}"), claims);
    PublisherCredential { certificate, key }
}

/// Forwarder-side verification of a signed item.
///
/// Checks, in order: the certificate chains to the CA, the certificate's
/// publisher claim matches the item's publisher, the publish scope covers
/// `scope`, and the signature covers the item bytes.
pub fn verify_item(
    registry: &TrustRegistry,
    cert: &Certificate,
    item: &NewsItem,
    scope: &ZoneId,
    key: KeyId,
    sig: Signature,
) -> bool {
    if !registry.verify_certificate(cert) {
        return false;
    }
    if cert.key != key {
        return false;
    }
    match cert.claim("publisher").and_then(|v| v.parse::<u16>().ok()) {
        Some(p) if PublisherId(p) == item.id.publisher => {}
        _ => return false,
    }
    match cert.claim("scope").map(parse_zone) {
        Some(Some(allowed)) if allowed.is_ancestor_of(scope) => {}
        _ => return false,
    }
    registry.verify(key, &item_bytes(item), sig)
}

/// Verification for *bare* items — the cache-to-cache paths (repair
/// replies, anti-entropy reconcile replies, joiner state transfer, stable
/// storage restore) that ship items without an envelope. Same chain as
/// [`verify_item`] minus the envelope-scope clause: a bare item carries no
/// routing scope to check, and `dissemination_admits` independently
/// re-checks the §8 `ds$scope` embedded in the item at every admission, so
/// a bare item cannot launder itself out of zone.
pub fn verify_bare_item(
    registry: &TrustRegistry,
    cert: &Certificate,
    item: &NewsItem,
    key: KeyId,
    sig: Signature,
) -> bool {
    if cert.key != key {
        return false;
    }
    match cert.claim("publisher").and_then(|v| v.parse::<u16>().ok()) {
        Some(p) if PublisherId(p) == item.id.publisher => {}
        _ => return false,
    }
    registry.verify_with_certificate(cert, &item_bytes(item), sig)
}

/// Parses the `/a/b` zone syntax used in certificate claims.
fn parse_zone(s: &str) -> Option<ZoneId> {
    if s == "/" {
        return Some(ZoneId::root());
    }
    let path: Result<Vec<u16>, _> =
        s.strip_prefix('/')?.split('/').map(|p| p.parse::<u16>()).collect();
    path.ok().map(ZoneId::from_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use newsml::Category;

    fn item() -> NewsItem {
        NewsItem::builder(PublisherId(4), 9)
            .headline("Signed story")
            .category(Category::World)
            .build()
    }

    fn setup() -> (TrustRegistry, PublisherCredential) {
        let mut reg = TrustRegistry::new(5);
        let cred = issue_publisher(&mut reg, PublisherId(4), "reuters", &ZoneId::root(), 600);
        (reg, cred)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (reg, cred) = setup();
        let it = item();
        let sig = cred.sign(&it);
        assert!(verify_item(&reg, &cred.certificate, &it, &ZoneId::root(), cred.key_id(), sig));
        assert_eq!(cred.publisher(), PublisherId(4));
    }

    #[test]
    fn tampered_item_rejected() {
        let (reg, cred) = setup();
        let it = item();
        let sig = cred.sign(&it);
        let mut tampered = it.clone();
        tampered.headline = "FAKE: markets collapse".into();
        assert!(!verify_item(
            &reg,
            &cred.certificate,
            &tampered,
            &ZoneId::root(),
            cred.key_id(),
            sig
        ));
    }

    #[test]
    fn wrong_publisher_claim_rejected() {
        let (mut reg, _cred) = setup();
        // Mallory holds a valid certificate for publisher 9 but publishes
        // items claiming to be publisher 4.
        let mallory = issue_publisher(&mut reg, PublisherId(9), "mallory", &ZoneId::root(), 600);
        let it = item(); // publisher 4
        let sig = mallory.sign(&it);
        assert!(!verify_item(
            &reg,
            &mallory.certificate,
            &it,
            &ZoneId::root(),
            mallory.key_id(),
            sig
        ));
    }

    #[test]
    fn scope_restriction_enforced() {
        let mut reg = TrustRegistry::new(6);
        let asia = ZoneId::root().child(2);
        let cred = issue_publisher(&mut reg, PublisherId(4), "regional", &asia, 60);
        let it = item();
        let sig = cred.sign(&it);
        assert!(verify_item(&reg, &cred.certificate, &it, &asia, cred.key_id(), sig));
        assert!(verify_item(&reg, &cred.certificate, &it, &asia.child(3), cred.key_id(), sig));
        assert!(
            !verify_item(&reg, &cred.certificate, &it, &ZoneId::root(), cred.key_id(), sig),
            "regional publisher must not publish globally"
        );
    }

    #[test]
    fn foreign_registry_rejected() {
        let (_, cred) = setup();
        let other_reg = TrustRegistry::new(999);
        let it = item();
        let sig = cred.sign(&it);
        assert!(!verify_item(
            &other_reg,
            &cred.certificate,
            &it,
            &ZoneId::root(),
            cred.key_id(),
            sig
        ));
    }

    #[test]
    fn bare_item_verification_ignores_scope_but_nothing_else() {
        let mut reg = TrustRegistry::new(6);
        let asia = ZoneId::root().child(2);
        let cred = issue_publisher(&mut reg, PublisherId(4), "regional", &asia, 60);
        let it = item();
        let sig = cred.sign(&it);
        // A bare item has no envelope scope to check…
        assert!(verify_bare_item(&reg, &cred.certificate, &it, cred.key_id(), sig));
        // …but tampering, key mismatch, and impersonation still fail.
        let mut tampered = it.clone();
        tampered.headline = "FORGED".into();
        assert!(!verify_bare_item(&reg, &cred.certificate, &tampered, cred.key_id(), sig));
        assert!(!verify_bare_item(&reg, &cred.certificate, &it, KeyId(0), sig));
        let mallory = issue_publisher(&mut reg, PublisherId(9), "mallory", &ZoneId::root(), 60);
        let msig = mallory.sign(&it);
        assert!(!verify_bare_item(&reg, &mallory.certificate, &it, mallory.key_id(), msig));
    }

    #[test]
    fn epoch_attest_roundtrip_and_forgery() {
        let (reg, cred) = setup();
        let attest = cred.attest_epoch(3);
        assert_eq!(attest.publisher, PublisherId(4));
        assert!(verify_epoch_attest(&reg, &cred.certificate, &attest));
        // Raising the claimed epoch without re-signing fails.
        let bumped = EpochAttest { epoch: 100, ..attest };
        assert!(!verify_epoch_attest(&reg, &cred.certificate, &bumped));
        // An attestation for publisher 4 cannot ride Mallory's certificate.
        let mut reg2 = TrustRegistry::new(5);
        let _ = issue_publisher(&mut reg2, PublisherId(4), "reuters", &ZoneId::root(), 600);
        let mallory = issue_publisher(&mut reg2, PublisherId(9), "mallory", &ZoneId::root(), 600);
        let forged = EpochAttest {
            publisher: PublisherId(4),
            epoch: 100,
            key: mallory.key_id(),
            signature: mallory.key.sign(&epoch_bytes(PublisherId(4), 100)),
        };
        assert!(!verify_epoch_attest(&reg2, &mallory.certificate, &forged));
    }

    #[test]
    fn zone_claim_parsing() {
        assert_eq!(parse_zone("/"), Some(ZoneId::root()));
        assert_eq!(parse_zone("/3/7"), Some(ZoneId::root().child(3).child(7)));
        assert_eq!(parse_zone("bogus"), None);
        assert_eq!(parse_zone("/x"), None);
    }
}
