//! The end-system message cache (paper §9).
//!
//! "At the end system the news items are delivered to a message cache,
//! which … feeds the applications that use the news items. Automatic cache
//! management can be configured to provide item management based on the
//! metadata of the news items, which includes information about item
//! revision history. On the basis of this metadata, the news item can be
//! garbage collected, or fused or aggregated into a more compact form. The
//! same cache is used for assisting in achieving end-to-end reliability in
//! the case of forwarding node failures, and for a limited state transfer
//! to participants that are joining the system."

use std::collections::{BTreeMap, HashMap};

use newsml::{ItemId, NewsItem, PublisherId};
use simnet::{SimDuration, SimTime};

/// Result of offering an item to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// First sighting; stored.
    Stored,
    /// Already cached.
    Duplicate,
    /// Stored, and an older revision of the same story was fused away.
    Fused,
    /// Rejected: a newer revision of this story is already cached.
    Obsolete,
}

/// Cache limits.
#[derive(Debug, Clone, Copy)]
pub struct CachePolicy {
    /// Maximum items retained.
    pub max_items: usize,
    /// Items older than this are garbage-collected.
    pub max_age: SimDuration,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy { max_items: 10_000, max_age: SimDuration::from_secs(24 * 3600) }
    }
}

/// The per-node news-item cache.
#[derive(Debug)]
pub struct MessageCache {
    policy: CachePolicy,
    items: BTreeMap<ItemId, (NewsItem, SimTime)>,
    latest_by_slug: HashMap<(PublisherId, String), ItemId>,
    highwater: BTreeMap<PublisherId, u64>,
}

impl MessageCache {
    /// Creates an empty cache under `policy`.
    pub fn new(policy: CachePolicy) -> Self {
        MessageCache {
            policy,
            items: BTreeMap::new(),
            latest_by_slug: HashMap::new(),
            highwater: BTreeMap::new(),
        }
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `id` is currently cached.
    pub fn contains(&self, id: ItemId) -> bool {
        self.items.contains_key(&id)
    }

    /// A cached item by id.
    pub fn get(&self, id: ItemId) -> Option<&NewsItem> {
        self.items.get(&id).map(|(item, _)| item)
    }

    /// Highest sequence number seen from `publisher` (0 when none).
    pub fn highwater(&self, publisher: PublisherId) -> u64 {
        self.highwater.get(&publisher).copied().unwrap_or(0)
    }

    /// All per-publisher high-water marks (for repair requests).
    pub fn highwaters(&self) -> Vec<(PublisherId, u64)> {
        self.highwater.iter().map(|(&p, &s)| (p, s)).collect()
    }

    /// The latest cached revision of `publisher`'s story `slug`, if any
    /// (the delta-encoding baseline lookup).
    pub fn latest_for_slug(&self, publisher: PublisherId, slug: &str) -> Option<&NewsItem> {
        let id = self.latest_by_slug.get(&(publisher, slug.to_owned()))?;
        self.get(*id)
    }

    /// Baseline hints for the revisions this cache holds — what a repair or
    /// reconcile requester declares so the responder can delta-encode its
    /// reply. Restricted to `publisher` when given; sorted by key (the
    /// backing map iterates in arbitrary order) and capped at `cap` so the
    /// request stays small.
    pub fn baselines(
        &self,
        publisher: Option<PublisherId>,
        cap: usize,
    ) -> Vec<amcast::BaselineHint> {
        let mut hints: Vec<amcast::BaselineHint> = self
            .latest_by_slug
            .iter()
            .filter(|((p, _), _)| publisher.is_none_or(|want| *p == want))
            .filter_map(|((p, slug), id)| {
                self.get(*id).map(|item| amcast::BaselineHint {
                    key: newsml::cdc::slug_key(*p, slug),
                    revision: item.revision,
                    body_len: item.body_len,
                })
            })
            .collect();
        hints.sort_by_key(|h| h.key);
        hints.truncate(cap);
        hints
    }

    /// Offers an item to the cache, applying revision fusion.
    pub fn insert(&mut self, item: NewsItem, now: SimTime) -> CacheOutcome {
        if self.items.contains_key(&item.id) {
            return CacheOutcome::Duplicate;
        }
        let hw = self.highwater.entry(item.id.publisher).or_insert(0);
        *hw = (*hw).max(item.id.seq);

        let slug_key = (item.id.publisher, item.slug.clone());
        let mut outcome = CacheOutcome::Stored;
        if let Some(&prev_id) = self.latest_by_slug.get(&slug_key) {
            if let Some((prev, _)) = self.items.get(&prev_id) {
                if prev.revision >= item.revision {
                    // We already hold a newer (or equal) telling of this
                    // story; keep it and drop the stale revision.
                    return CacheOutcome::Obsolete;
                }
            }
            // Fuse: the new revision replaces the old one.
            self.items.remove(&prev_id);
            outcome = CacheOutcome::Fused;
        }
        self.latest_by_slug.insert(slug_key, item.id);
        self.items.insert(item.id, (item, now));
        self.enforce_capacity();
        outcome
    }

    fn enforce_capacity(&mut self) {
        while self.items.len() > self.policy.max_items {
            // Evict the oldest-received item.
            let victim = self
                .items
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(&id, _)| id)
                .expect("non-empty");
            self.remove(victim);
        }
    }

    fn remove(&mut self, id: ItemId) {
        if let Some((item, _)) = self.items.remove(&id) {
            let key = (item.id.publisher, item.slug.clone());
            if self.latest_by_slug.get(&key) == Some(&id) {
                self.latest_by_slug.remove(&key);
            }
        }
    }

    /// Evicts `id` unconditionally, bypassing policy. Used by the
    /// trust-root rotation retroactive purge (DESIGN §15): items admitted
    /// under a key that has since been revoked are unverifiable history and
    /// must not be served to repair or reconcile peers. Returns whether the
    /// item was present.
    pub fn purge(&mut self, id: ItemId) -> bool {
        let present = self.items.contains_key(&id);
        self.remove(id);
        present
    }

    /// Garbage-collects items older than the policy's `max_age`.
    /// Returns how many were collected.
    pub fn gc(&mut self, now: SimTime) -> usize {
        let cutoff = now.as_micros().saturating_sub(self.policy.max_age.as_micros());
        let victims: Vec<ItemId> = self
            .items
            .iter()
            .filter(|(_, (_, at))| at.as_micros() < cutoff)
            .map(|(&id, _)| id)
            .collect();
        let n = victims.len();
        for v in victims {
            self.remove(v);
        }
        n
    }

    /// Cached items from `publisher` with sequence numbers at or above
    /// `min_seq` (the repair / state-transfer reply, bounded by `limit`).
    pub fn items_from(&self, publisher: PublisherId, min_seq: u64, limit: usize) -> Vec<NewsItem> {
        self.items
            .range(ItemId::new(publisher, min_seq)..=ItemId::new(publisher, u64::MAX))
            .take(limit)
            .map(|(_, (item, _))| item.clone())
            .collect()
    }

    /// The most recent `limit` items across publishers (joiner bootstrap).
    pub fn snapshot(&self, limit: usize) -> Vec<NewsItem> {
        let mut all: Vec<(&SimTime, &NewsItem)> =
            self.items.values().map(|(item, at)| (at, item)).collect();
        all.sort_by_key(|(at, _)| std::cmp::Reverse(**at));
        all.into_iter().take(limit).map(|(_, item)| item.clone()).collect()
    }

    /// Iterates over cached items.
    pub fn iter(&self) -> impl Iterator<Item = &NewsItem> {
        self.items.values().map(|(item, _)| item)
    }
}

impl Default for MessageCache {
    fn default() -> Self {
        MessageCache::new(CachePolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newsml::NewsItem;

    fn item(publ: u16, seq: u64, slug: &str, rev: u32) -> NewsItem {
        NewsItem::builder(PublisherId(publ), seq)
            .headline(format!("story {slug}"))
            .slug(slug)
            .revision(rev, None)
            .build()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_and_duplicate() {
        let mut c = MessageCache::default();
        assert_eq!(c.insert(item(1, 1, "a", 0), t(0)), CacheOutcome::Stored);
        assert_eq!(c.insert(item(1, 1, "a", 0), t(1)), CacheOutcome::Duplicate);
        assert_eq!(c.len(), 1);
        assert_eq!(c.highwater(PublisherId(1)), 1);
    }

    #[test]
    fn revision_fusion_keeps_latest() {
        let mut c = MessageCache::default();
        c.insert(item(1, 1, "story", 0), t(0));
        assert_eq!(c.insert(item(1, 5, "story", 2), t(1)), CacheOutcome::Fused);
        assert_eq!(c.len(), 1, "old revision fused away");
        assert!(c.contains(ItemId::new(PublisherId(1), 5)));
        // A late-arriving older revision is rejected.
        assert_eq!(c.insert(item(1, 3, "story", 1), t(2)), CacheOutcome::Obsolete);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_received() {
        let mut c = MessageCache::new(CachePolicy { max_items: 3, ..Default::default() });
        for i in 0..5u64 {
            c.insert(item(1, i, &format!("s{i}"), 0), t(i));
        }
        assert_eq!(c.len(), 3);
        assert!(!c.contains(ItemId::new(PublisherId(1), 0)));
        assert!(c.contains(ItemId::new(PublisherId(1), 4)));
    }

    #[test]
    fn gc_by_age() {
        let mut c = MessageCache::new(CachePolicy {
            max_age: SimDuration::from_secs(100),
            ..Default::default()
        });
        c.insert(item(1, 1, "old", 0), t(0));
        c.insert(item(1, 2, "new", 0), t(90));
        assert_eq!(c.gc(t(120)), 1);
        assert!(!c.contains(ItemId::new(PublisherId(1), 1)));
        assert!(c.contains(ItemId::new(PublisherId(1), 2)));
    }

    #[test]
    fn items_from_serves_repair_inclusively() {
        let mut c = MessageCache::default();
        for i in 0..=10u64 {
            c.insert(item(1, i, &format!("s{i}"), 0), t(i));
        }
        c.insert(item(2, 50, "other", 0), t(11));
        let repair = c.items_from(PublisherId(1), 8, 100);
        let seqs: Vec<u64> = repair.iter().map(|i| i.id.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10]);
        // Inclusive from zero: the very first item is repairable.
        assert_eq!(c.items_from(PublisherId(1), 0, 100).len(), 11);
        let limited = c.items_from(PublisherId(1), 0, 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn snapshot_returns_most_recent() {
        let mut c = MessageCache::default();
        for i in 0..10u64 {
            c.insert(item(1, i, &format!("s{i}"), 0), t(i));
        }
        let snap = c.snapshot(3);
        assert_eq!(snap.len(), 3);
        assert!(
            snap.iter().all(|i| i.id.seq >= 7),
            "{:?}",
            snap.iter().map(|i| i.id.seq).collect::<Vec<_>>()
        );
    }

    #[test]
    fn highwater_tracks_gaps() {
        let mut c = MessageCache::default();
        c.insert(item(3, 7, "x", 0), t(0));
        assert_eq!(c.highwater(PublisherId(3)), 7);
        assert_eq!(c.highwater(PublisherId(4)), 0);
        assert_eq!(c.highwaters(), vec![(PublisherId(3), 7)]);
    }
}
