//! Stable-storage codecs for cold-restart recovery.
//!
//! A NewsWire node persists three records to its simulated disk (see
//! `simnet::Disk`): its incarnation number (key `incar`), its subscription
//! (key `sub`), and a periodic snapshot of its durable protocol state (key
//! `state`) — per-publisher article-log coverage, cached items, and the
//! application delivery log. Everything is encoded as length-prefixed text
//! tokens (`len:content`), which keeps the format self-delimiting without
//! pulling in a serialization dependency, and keeps torn or truncated blobs
//! detectable: any decode failure makes the node fall back to an amnesiac
//! rejoin, which anti-entropy then repairs.

use astrolabe::{KeyId, Signature};
use newsml::{Category, ItemId, NewsItem, PublisherId, Subject, Urgency};
use simnet::SimTime;

use crate::node::DeliveryRecord;
use crate::Subscription;

/// Appends length-prefixed tokens to a growing string buffer.
#[derive(Debug, Default)]
pub(crate) struct TokenWriter {
    buf: String,
}

impl TokenWriter {
    pub(crate) fn new() -> Self {
        TokenWriter::default()
    }

    pub(crate) fn push(&mut self, tok: &str) {
        use std::fmt::Write as _;
        let _ = write!(self.buf, "{}:{}", tok.len(), tok);
    }

    pub(crate) fn push_u64(&mut self, v: u64) {
        self.push(&v.to_string());
    }

    pub(crate) fn finish(self) -> String {
        self.buf
    }
}

/// Sequential reader over a token stream; every accessor returns `None` on
/// malformed input, so decoders propagate corruption as a single failure.
#[derive(Debug)]
pub(crate) struct TokenReader<'a> {
    rest: &'a str,
}

impl<'a> TokenReader<'a> {
    pub(crate) fn new(s: &'a str) -> Self {
        TokenReader { rest: s }
    }

    pub(crate) fn next(&mut self) -> Option<&'a str> {
        let colon = self.rest.find(':')?;
        let len: usize = self.rest[..colon].parse().ok()?;
        let start = colon + 1;
        let end = start.checked_add(len)?;
        if end > self.rest.len() || !self.rest.is_char_boundary(end) {
            return None;
        }
        let tok = &self.rest[start..end];
        self.rest = &self.rest[end..];
        Some(tok)
    }

    pub(crate) fn next_u64(&mut self) -> Option<u64> {
        self.next()?.parse().ok()
    }
}

// ---------------------------------------------------------------- incarnation

/// Encodes an incarnation number for the `incar` disk record.
pub(crate) fn encode_incarnation(incarnation: u64) -> Vec<u8> {
    incarnation.to_string().into_bytes()
}

/// Decodes the `incar` disk record; `None` on corruption.
pub(crate) fn decode_incarnation(bytes: &[u8]) -> Option<u64> {
    std::str::from_utf8(bytes).ok()?.parse().ok()
}

// ---------------------------------------------------------------- subscription

/// Encodes a subscription for the `sub` disk record: per-publisher category
/// bits, subject keys, and the SQL predicate source (retained verbatim so
/// recovery re-derives the exact filter).
pub(crate) fn encode_subscription(sub: &Subscription) -> Vec<u8> {
    let mut w = TokenWriter::new();
    w.push("sub1");
    w.push_u64(sub.publishers.len() as u64);
    for (p, cats) in &sub.publishers {
        w.push_u64(u64::from(p.0));
        let bits: Vec<String> = cats.iter().map(|c| c.bit().to_string()).collect();
        w.push(&bits.join(","));
    }
    w.push_u64(sub.subjects.len() as u64);
    for s in &sub.subjects {
        w.push(&s.key());
    }
    match sub.predicate_sql() {
        Some(sql) => {
            w.push("1");
            w.push(sql);
        }
        None => w.push("0"),
    }
    w.finish().into_bytes()
}

/// Decodes the `sub` disk record; `None` on corruption.
pub(crate) fn decode_subscription(bytes: &[u8]) -> Option<Subscription> {
    let mut r = TokenReader::new(std::str::from_utf8(bytes).ok()?);
    if r.next()? != "sub1" {
        return None;
    }
    let mut sub = Subscription::new();
    let publishers = r.next_u64()?;
    for _ in 0..publishers {
        let p = PublisherId(u16::try_from(r.next_u64()?).ok()?);
        for bit in r.next()?.split(',').filter(|s| !s.is_empty()) {
            sub.subscribe_category(p, Category::from_bit(bit.parse().ok()?)?);
        }
    }
    let subjects = r.next_u64()?;
    for _ in 0..subjects {
        sub.subscribe_subject(r.next()?.parse::<Subject>().ok()?);
    }
    if r.next()? == "1" {
        sub.set_predicate(r.next()?).ok()?;
    }
    Some(sub)
}

// ---------------------------------------------------------------- news items

fn encode_item(w: &mut TokenWriter, item: &NewsItem) {
    w.push_u64(u64::from(item.id.publisher.0));
    w.push_u64(item.id.seq);
    w.push_u64(u64::from(item.revision));
    match item.supersedes {
        Some(id) => w.push(&format!("{}/{}", id.publisher.0, id.seq)),
        None => w.push("-"),
    }
    w.push(&item.headline);
    w.push(&item.slug);
    let bits: Vec<String> = item.categories.iter().map(|c| c.bit().to_string()).collect();
    w.push(&bits.join(","));
    w.push_u64(item.subjects.len() as u64);
    for s in &item.subjects {
        w.push(&s.key());
    }
    w.push_u64(u64::from(item.urgency.level()));
    w.push_u64(item.issued_us);
    w.push_u64(u64::from(item.body_len));
    w.push_u64(item.meta.len() as u64);
    for (k, v) in &item.meta {
        w.push(k);
        w.push(v);
    }
}

fn decode_item(r: &mut TokenReader) -> Option<NewsItem> {
    let publisher = PublisherId(u16::try_from(r.next_u64()?).ok()?);
    let seq = r.next_u64()?;
    let revision = u32::try_from(r.next_u64()?).ok()?;
    let supersedes = match r.next()? {
        "-" => None,
        s => {
            let (p, q) = s.split_once('/')?;
            Some(ItemId::new(PublisherId(p.parse().ok()?), q.parse().ok()?))
        }
    };
    let headline = r.next()?.to_owned();
    let slug = r.next()?.to_owned();
    let mut categories = Vec::new();
    for bit in r.next()?.split(',').filter(|s| !s.is_empty()) {
        categories.push(Category::from_bit(bit.parse().ok()?)?);
    }
    let nsubjects = r.next_u64()?;
    let mut subjects = Vec::new();
    for _ in 0..nsubjects {
        subjects.push(r.next()?.parse::<Subject>().ok()?);
    }
    let level = u8::try_from(r.next_u64()?).ok()?;
    if !(1..=8).contains(&level) {
        return None;
    }
    let urgency = Urgency::new(level);
    let issued_us = r.next_u64()?;
    let body_len = u32::try_from(r.next_u64()?).ok()?;
    let nmeta = r.next_u64()?;
    let mut meta = Vec::new();
    for _ in 0..nmeta {
        let k = r.next()?.to_owned();
        let v = r.next()?.to_owned();
        meta.push((k, v));
    }
    Some(NewsItem {
        id: ItemId::new(publisher, seq),
        revision,
        supersedes,
        headline,
        slug,
        categories,
        subjects,
        urgency,
        issued_us,
        body_len,
        meta,
    })
}

// ---------------------------------------------------------------- node state

/// One persisted article log: publisher, coverage summary (see
/// `SeqLog::encode_coverage`), and the inclusive ranges of sequence numbers
/// the log had actually seen. Lost entries surface as honest gaps after
/// restore, which anti-entropy then repairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LogState {
    pub(crate) publisher: PublisherId,
    pub(crate) coverage: String,
    pub(crate) present: Vec<(u64, u64)>,
}

/// The durable protocol state a node snapshots to its `state` disk record.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct NodeState {
    pub(crate) logs: Vec<LogState>,
    /// Cached items with their publisher signatures, so a cold restart can
    /// re-verify every restored item instead of trusting the disk blob
    /// (DESIGN §12 — stable storage is just another admission path).
    pub(crate) items: Vec<(NewsItem, KeyId, Signature)>,
    pub(crate) deliveries: Vec<DeliveryRecord>,
    /// Adopted trust-root rotation records (encoded), persisted so a
    /// durable cold restart re-arms the revocation fence *before* it
    /// re-admits cached items — otherwise a reboot would resurrect items
    /// signed by a key revoked while the node was up. Written as an
    /// optional trailing section: nodes that never saw a rotation produce
    /// blobs byte-identical to the pre-rotation format.
    pub(crate) rotations: Vec<String>,
}

/// Encodes the `state` disk record.
pub(crate) fn encode_state(state: &NodeState) -> Vec<u8> {
    let mut w = TokenWriter::new();
    w.push("nwstate2");
    w.push_u64(state.logs.len() as u64);
    for log in &state.logs {
        w.push_u64(u64::from(log.publisher.0));
        w.push(&log.coverage);
        let ranges: Vec<String> = log.present.iter().map(|(lo, hi)| format!("{lo}-{hi}")).collect();
        w.push(&ranges.join(","));
    }
    w.push_u64(state.items.len() as u64);
    for (item, key, sig) in &state.items {
        encode_item(&mut w, item);
        w.push_u64(key.0);
        w.push_u64(sig.0);
    }
    w.push_u64(state.deliveries.len() as u64);
    for d in &state.deliveries {
        w.push_u64(u64::from(d.item.publisher.0));
        w.push_u64(d.item.seq);
        w.push_u64(d.msg_id);
        w.push_u64(d.published.as_micros());
        w.push_u64(d.delivered.as_micros());
        w.push(if d.via_repair { "1" } else { "0" });
    }
    if !state.rotations.is_empty() {
        w.push("rot");
        w.push_u64(state.rotations.len() as u64);
        for r in &state.rotations {
            w.push(r);
        }
    }
    w.finish().into_bytes()
}

/// Decodes the `state` disk record; `None` on corruption (the node then
/// rejoins amnesiac and lets anti-entropy backfill).
pub(crate) fn decode_state(bytes: &[u8]) -> Option<NodeState> {
    let mut r = TokenReader::new(std::str::from_utf8(bytes).ok()?);
    if r.next()? != "nwstate2" {
        return None;
    }
    let mut state = NodeState::default();
    let nlogs = r.next_u64()?;
    for _ in 0..nlogs {
        let publisher = PublisherId(u16::try_from(r.next_u64()?).ok()?);
        let coverage = r.next()?.to_owned();
        let mut present = Vec::new();
        for range in r.next()?.split(',').filter(|s| !s.is_empty()) {
            let (lo, hi) = range.split_once('-')?;
            let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
            if lo > hi {
                return None;
            }
            present.push((lo, hi));
        }
        state.logs.push(LogState { publisher, coverage, present });
    }
    let nitems = r.next_u64()?;
    for _ in 0..nitems {
        let item = decode_item(&mut r)?;
        let key = KeyId(r.next_u64()?);
        let sig = Signature(r.next_u64()?);
        state.items.push((item, key, sig));
    }
    let ndeliveries = r.next_u64()?;
    for _ in 0..ndeliveries {
        let publisher = PublisherId(u16::try_from(r.next_u64()?).ok()?);
        let seq = r.next_u64()?;
        let msg_id = r.next_u64()?;
        let published = SimTime::from_micros(r.next_u64()?);
        let delivered = SimTime::from_micros(r.next_u64()?);
        let via_repair = match r.next()? {
            "1" => true,
            "0" => false,
            _ => return None,
        };
        state.deliveries.push(DeliveryRecord {
            item: ItemId::new(publisher, seq),
            msg_id,
            published,
            delivered,
            via_repair,
        });
    }
    // Optional trailing rotation section; absent in pre-rotation blobs.
    if let Some(tag) = r.next() {
        if tag != "rot" {
            return None;
        }
        let nrot = r.next_u64()?;
        for _ in 0..nrot {
            state.rotations.push(r.next()?.to_owned());
        }
    }
    Some(state)
}

/// Compresses a sorted iterator of sequence numbers into inclusive ranges.
pub(crate) fn compress_ranges(seqs: impl Iterator<Item = u64>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for seq in seqs {
        match out.last_mut() {
            Some((_, hi)) if *hi + 1 == seq => *hi = seq,
            _ => out.push((seq, seq)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use newsml::Category;

    fn rich_item() -> NewsItem {
        let mut item = NewsItem::builder(PublisherId(3), 17)
            .headline("markets: chips rally")
            .slug("chips-rally")
            .category(Category::Technology)
            .category(Category::Business)
            .subject("04.003.005".parse().unwrap())
            .urgency(Urgency::new(2))
            .body_len(1234)
            .meta("source", "reuters")
            .meta("desk", "markets & tech")
            .build();
        item.revision = 2;
        item.supersedes = Some(ItemId::new(PublisherId(3), 11));
        item.issued_us = 95_000_000;
        item
    }

    #[test]
    fn token_stream_roundtrip_handles_empty_and_unicode() {
        let mut w = TokenWriter::new();
        w.push("");
        w.push("héllo:world");
        w.push_u64(42);
        let s = w.finish();
        let mut r = TokenReader::new(&s);
        assert_eq!(r.next(), Some(""));
        assert_eq!(r.next(), Some("héllo:world"));
        assert_eq!(r.next_u64(), Some(42));
        assert_eq!(r.next(), None);
    }

    #[test]
    fn truncated_token_stream_decodes_to_none() {
        let mut w = TokenWriter::new();
        w.push("hello");
        let s = w.finish();
        let mut r = TokenReader::new(&s[..s.len() - 2]);
        assert_eq!(r.next(), None);
    }

    #[test]
    fn subscription_roundtrip_with_predicate() {
        let mut sub = Subscription::new();
        sub.subscribe_category(PublisherId(1), Category::Technology);
        sub.subscribe_category(PublisherId(1), Category::Science);
        sub.subscribe_category(PublisherId(4), Category::Sports);
        sub.subscribe_subject("04.003".parse().unwrap());
        sub.set_predicate("urgency <= 3").unwrap();
        let decoded = decode_subscription(&encode_subscription(&sub)).unwrap();
        assert_eq!(decoded.publishers, sub.publishers);
        assert_eq!(decoded.subjects, sub.subjects);
        assert_eq!(decoded.predicate_sql(), Some("urgency <= 3"));
        let item = NewsItem::builder(PublisherId(1), 0)
            .headline("h")
            .category(Category::Technology)
            .urgency(Urgency::new(5))
            .build();
        assert!(!decoded.matches(&item), "restored predicate must still filter");
    }

    #[test]
    fn subscription_roundtrip_without_predicate() {
        let mut sub = Subscription::new();
        sub.subscribe_category(PublisherId(0), Category::Politics);
        let decoded = decode_subscription(&encode_subscription(&sub)).unwrap();
        assert_eq!(decoded.publishers, sub.publishers);
        assert_eq!(decoded.predicate_sql(), None);
    }

    #[test]
    fn state_roundtrip_preserves_items_logs_and_deliveries() {
        let item = rich_item();
        let state = NodeState {
            logs: vec![LogState {
                publisher: PublisherId(3),
                coverage: "1:2:20:15".to_owned(),
                present: vec![(2, 9), (12, 19)],
            }],
            items: vec![(item.clone(), KeyId(11), Signature(22))],
            deliveries: vec![DeliveryRecord {
                item: item.id,
                msg_id: 777,
                published: SimTime::from_micros(95_000_000),
                delivered: SimTime::from_micros(95_420_000),
                via_repair: true,
            }],
            rotations: vec!["rot1|publisher:3|fake|record".to_owned()],
        };
        let decoded = decode_state(&encode_state(&state)).unwrap();
        assert_eq!(decoded, state);
        assert_eq!(decoded.items[0].0, item, "full NewsItem fidelity incl. meta/supersedes");
        assert_eq!((decoded.items[0].1, decoded.items[0].2), (KeyId(11), Signature(22)));
    }

    #[test]
    fn corrupt_state_blob_decodes_to_none() {
        let state = NodeState::default();
        let mut bytes = encode_state(&state);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_state(&bytes).is_none());
        assert!(decode_state(b"8:garbage!").is_none());
        assert!(decode_incarnation(b"not a number").is_none());
        assert_eq!(decode_incarnation(b"41"), Some(41));
    }

    #[test]
    fn compress_ranges_merges_adjacent_runs() {
        let ranges = compress_ranges([0, 1, 2, 5, 7, 8].into_iter());
        assert_eq!(ranges, vec![(0, 2), (5, 5), (7, 8)]);
        assert!(compress_ranges(std::iter::empty()).is_empty());
    }
}
