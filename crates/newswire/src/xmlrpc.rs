//! XML-RPC integration gateway (paper §10).
//!
//! "We are also looking for integration into popular content aggregation
//! systems such as Radio Userland using XML-RPC mechanisms."
//!
//! A minimal XML-RPC 1.0 codec (on the in-repo XML parser) plus the gateway
//! method set a content aggregator would call against a local NewsWire
//! node:
//!
//! * `newswire.publish(<nitf-xml>)` → item guid — hand an article to the
//!   local publisher application.
//! * `newswire.latest(n)` → array of NITF documents from the local cache.
//! * `newswire.subscriptions()` → array of the node's Bloom keys.
//!
//! The gateway operates purely on a [`NewsWireNode`]'s state plus a
//! publish-callback, so it composes with any transport (the simulation, or
//! real HTTP in a production port).

use std::fmt;

use newsml::xml::{parse, Element, ParseXmlError};
use newsml::NewsItem;

use crate::node::NewsWireNode;

/// An XML-RPC value (the subset the gateway methods use).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `<int>` / `<i4>`.
    Int(i64),
    /// `<string>`.
    Str(String),
    /// `<boolean>`.
    Bool(bool),
    /// `<array>`.
    Array(Vec<Value>),
}

impl Value {
    fn to_element(&self) -> Element {
        let inner = match self {
            Value::Int(i) => Element::new("int").with_text(i.to_string()),
            Value::Str(s) => Element::new("string").with_text(s.clone()),
            Value::Bool(b) => Element::new("boolean").with_text(if *b { "1" } else { "0" }),
            Value::Array(items) => {
                let mut data = Element::new("data");
                for item in items {
                    data = data.with_child(item.to_element());
                }
                Element::new("array").with_child(data)
            }
        };
        Element::new("value").with_child(inner)
    }

    fn from_element(value: &Element) -> Result<Value, RpcError> {
        if value.name != "value" {
            return Err(RpcError::malformed("expected <value>"));
        }
        let Some(inner) = value.elements().next() else {
            // Bare text inside <value> defaults to string, per the spec.
            return Ok(Value::Str(value.text()));
        };
        match inner.name.as_str() {
            "int" | "i4" => {
                inner.text().parse().map(Value::Int).map_err(|_| RpcError::malformed("bad <int>"))
            }
            "string" => Ok(Value::Str(inner.text())),
            "boolean" => match inner.text().as_str() {
                "1" => Ok(Value::Bool(true)),
                "0" => Ok(Value::Bool(false)),
                _ => Err(RpcError::malformed("bad <boolean>")),
            },
            "array" => {
                let data =
                    inner.child("data").ok_or_else(|| RpcError::malformed("array missing data"))?;
                data.elements().map(Value::from_element).collect::<Result<_, _>>().map(Value::Array)
            }
            other => Err(RpcError::malformed(format!("unsupported type <{other}>"))),
        }
    }
}

/// A parsed `<methodCall>`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCall {
    /// Method name, e.g. `newswire.latest`.
    pub method: String,
    /// Positional parameters.
    pub params: Vec<Value>,
}

impl MethodCall {
    /// Creates a call.
    pub fn new(method: impl Into<String>, params: Vec<Value>) -> Self {
        MethodCall { method: method.into(), params }
    }

    /// Encodes to XML-RPC request XML.
    pub fn to_xml(&self) -> String {
        let mut params = Element::new("params");
        for p in &self.params {
            params = params.with_child(Element::new("param").with_child(p.to_element()));
        }
        Element::new("methodCall")
            .with_child(Element::new("methodName").with_text(self.method.clone()))
            .with_child(params)
            .to_xml()
    }

    /// Decodes from XML-RPC request XML.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on malformed XML or request shape.
    pub fn from_xml(xml: &str) -> Result<MethodCall, RpcError> {
        let root = parse(xml)?;
        if root.name != "methodCall" {
            return Err(RpcError::malformed("expected <methodCall>"));
        }
        let method = root
            .child("methodName")
            .map(|m| m.text())
            .filter(|m| !m.is_empty())
            .ok_or_else(|| RpcError::malformed("missing <methodName>"))?;
        let mut params = Vec::new();
        if let Some(ps) = root.child("params") {
            for p in ps.children_named("param") {
                let v =
                    p.child("value").ok_or_else(|| RpcError::malformed("param missing value"))?;
                params.push(Value::from_element(v)?);
            }
        }
        Ok(MethodCall { method, params })
    }
}

/// A method response: a value, or a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful result.
    Ok(Value),
    /// XML-RPC fault with code and message.
    Fault(i64, String),
}

impl Response {
    /// Encodes to XML-RPC response XML.
    pub fn to_xml(&self) -> String {
        match self {
            Response::Ok(v) => Element::new("methodResponse")
                .with_child(
                    Element::new("params")
                        .with_child(Element::new("param").with_child(v.to_element())),
                )
                .to_xml(),
            Response::Fault(code, msg) => Element::new("methodResponse")
                .with_child(
                    Element::new("fault").with_child(
                        Element::new("value").with_child(
                            Element::new("struct")
                                .with_child(
                                    Element::new("member")
                                        .with_child(Element::new("name").with_text("faultCode"))
                                        .with_child(Value::Int(*code).to_element()),
                                )
                                .with_child(
                                    Element::new("member")
                                        .with_child(Element::new("name").with_text("faultString"))
                                        .with_child(Value::Str(msg.clone()).to_element()),
                                ),
                        ),
                    ),
                )
                .to_xml(),
        }
    }
}

/// Gateway failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcError {
    /// Fault code (−32700 parse error, −32601 unknown method, −32602 bad
    /// params, 1 application error — the usual XML-RPC conventions).
    pub code: i64,
    /// Message.
    pub message: String,
}

impl RpcError {
    fn malformed(m: impl Into<String>) -> Self {
        RpcError { code: -32700, message: m.into() }
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml-rpc error {}: {}", self.code, self.message)
    }
}
impl std::error::Error for RpcError {}

impl From<ParseXmlError> for RpcError {
    fn from(e: ParseXmlError) -> Self {
        RpcError::malformed(e.to_string())
    }
}

/// Dispatches one XML-RPC request against a node.
///
/// `publish` is invoked for `newswire.publish` with the decoded item; the
/// host (simulation driver or HTTP server) turns it into a
/// `PublishRequest` for the node.
pub fn dispatch<F>(node: &NewsWireNode, request_xml: &str, mut publish: F) -> String
where
    F: FnMut(NewsItem),
{
    let call = match MethodCall::from_xml(request_xml) {
        Ok(c) => c,
        Err(e) => return Response::Fault(e.code, e.message).to_xml(),
    };
    let resp = match call.method.as_str() {
        "newswire.publish" => match call.params.as_slice() {
            [Value::Str(nitf)] => match newsml::from_nitf_xml(nitf) {
                Ok(item) => {
                    let guid = item.id.to_string();
                    publish(item);
                    Response::Ok(Value::Str(guid))
                }
                Err(e) => Response::Fault(-32602, format!("invalid nitf: {e}")),
            },
            _ => Response::Fault(-32602, "newswire.publish expects one string".into()),
        },
        "newswire.latest" => match call.params.as_slice() {
            [Value::Int(n)] if *n >= 0 => {
                let items = node.cache.snapshot(*n as usize);
                Response::Ok(Value::Array(
                    items.iter().map(|i| Value::Str(newsml::to_nitf_xml(i))).collect(),
                ))
            }
            _ => Response::Fault(-32602, "newswire.latest expects a non-negative int".into()),
        },
        "newswire.subscriptions" => Response::Ok(Value::Array(
            node.subscription.bloom_keys().into_iter().map(Value::Str).collect(),
        )),
        other => Response::Fault(-32601, format!("unknown method `{other}`")),
    };
    resp.to_xml()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NewsWireConfig;
    use crate::subscription::Subscription;
    use astrolabe::{Agent, Config, TrustRegistry, ZoneLayout};
    use newsml::{Category, PublisherId};
    use std::sync::Arc;

    fn node() -> NewsWireNode {
        let layout = ZoneLayout::new(4, 4);
        let agent = Agent::new(0, &layout, Config::standard(), vec![]);
        let mut n =
            NewsWireNode::new(agent, NewsWireConfig::tech_news(), Arc::new(TrustRegistry::new(1)));
        let mut sub = Subscription::new();
        sub.subscribe_category(PublisherId(0), Category::Technology);
        n.set_subscription(sub);
        n
    }

    #[test]
    fn call_roundtrip() {
        let call = MethodCall::new(
            "newswire.latest",
            vec![Value::Int(5), Value::Str("x".into()), Value::Bool(true)],
        );
        let back = MethodCall::from_xml(&call.to_xml()).unwrap();
        assert_eq!(back, call);
    }

    #[test]
    fn array_roundtrip() {
        let call = MethodCall::new(
            "m",
            vec![Value::Array(vec![Value::Int(1), Value::Array(vec![Value::Str("s".into())])])],
        );
        assert_eq!(MethodCall::from_xml(&call.to_xml()).unwrap(), call);
    }

    #[test]
    fn publish_dispatch_decodes_nitf() {
        let n = node();
        let item = newsml::NewsItem::builder(PublisherId(0), 9)
            .headline("Via XML-RPC")
            .category(Category::Technology)
            .build();
        let call =
            MethodCall::new("newswire.publish", vec![Value::Str(newsml::to_nitf_xml(&item))]);
        let mut published = Vec::new();
        let resp = dispatch(&n, &call.to_xml(), |i| published.push(i));
        assert_eq!(published, vec![item]);
        assert!(resp.contains("p0:9"), "{resp}");
        assert!(!resp.contains("fault"));
    }

    #[test]
    fn latest_returns_cached_items() {
        let mut n = node();
        for seq in 0..3 {
            let item = newsml::NewsItem::builder(PublisherId(0), seq)
                .headline(format!("h{seq}"))
                .category(Category::Technology)
                .build();
            n.cache.insert(item, simnet::SimTime::from_secs(seq));
        }
        let call = MethodCall::new("newswire.latest", vec![Value::Int(2)]);
        let resp = dispatch(&n, &call.to_xml(), |_| {});
        assert_eq!(resp.matches("&lt;nitf&gt;").count(), 2, "{resp}");
    }

    #[test]
    fn subscriptions_lists_bloom_keys() {
        let n = node();
        let call = MethodCall::new("newswire.subscriptions", vec![]);
        let resp = dispatch(&n, &call.to_xml(), |_| {});
        assert!(resp.contains("p0/technology"));
    }

    #[test]
    fn faults_for_bad_input() {
        let n = node();
        let resp = dispatch(&n, "<not-xmlrpc/>", |_| {});
        assert!(resp.contains("faultCode"));
        let resp = dispatch(&n, &MethodCall::new("no.such.method", vec![]).to_xml(), |_| {});
        assert!(resp.contains("-32601"));
        let resp = dispatch(
            &n,
            &MethodCall::new("newswire.publish", vec![Value::Int(5)]).to_xml(),
            |_| {},
        );
        assert!(resp.contains("-32602"));
        let resp = dispatch(
            &n,
            &MethodCall::new("newswire.publish", vec![Value::Str("<junk/>".into())]).to_xml(),
            |_| {},
        );
        assert!(resp.contains("invalid nitf"));
    }

    #[test]
    fn bare_text_value_is_string() {
        let xml = "<methodCall><methodName>m</methodName><params><param>\
                   <value>plain</value></param></params></methodCall>";
        let call = MethodCall::from_xml(xml).unwrap();
        assert_eq!(call.params, vec![Value::Str("plain".into())]);
    }
}
