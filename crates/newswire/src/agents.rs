//! RSS bootstrap agents (paper §10).
//!
//! "We have already developed some agents that are capable of transforming
//! the current RSS/HTML information from some publishers into message
//! streams for the system to bootstrap it." This module models that
//! ingestion path: a minimal RSS 0.91-style channel document (parsed with
//! the in-repo XML parser), and an agent that polls a channel, deduplicates
//! entries across polls, and emits fresh `NewsItem`s ready for a
//! `PublishRequest`.

use std::collections::HashSet;

use newsml::xml::{parse, Element, ParseXmlError};
use newsml::{Category, NewsItem, PublisherId, Subject, Urgency};

/// One `<item>` of an RSS channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RssEntry {
    /// Item title.
    pub title: String,
    /// Link to the full article.
    pub link: String,
    /// Stable unique id of the entry.
    pub guid: String,
    /// Optional category string.
    pub category: Option<String>,
}

/// A minimal RSS channel document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RssChannel {
    /// Channel title.
    pub title: String,
    /// Entries, newest first (as sites publish them).
    pub entries: Vec<RssEntry>,
}

impl RssChannel {
    /// Serializes the channel to RSS XML.
    pub fn to_xml(&self) -> String {
        let mut channel =
            Element::new("channel").with_child(Element::new("title").with_text(self.title.clone()));
        for e in &self.entries {
            let mut item = Element::new("item")
                .with_child(Element::new("title").with_text(e.title.clone()))
                .with_child(Element::new("link").with_text(e.link.clone()))
                .with_child(Element::new("guid").with_text(e.guid.clone()));
            if let Some(c) = &e.category {
                item = item.with_child(Element::new("category").with_text(c.clone()));
            }
            channel = channel.with_child(item);
        }
        Element::new("rss").with_attr("version", "0.91").with_child(channel).to_xml()
    }

    /// Parses a channel from RSS XML.
    ///
    /// # Errors
    ///
    /// Returns the underlying XML error, or a shape error (as
    /// [`ParseXmlError`] with offset 0) when the document is not an RSS
    /// channel.
    pub fn from_xml(xml: &str) -> Result<RssChannel, ParseXmlError> {
        let root = parse(xml)?;
        let shape = |m: &str| ParseXmlError { offset: 0, message: m.to_owned() };
        if root.name != "rss" {
            return Err(shape("root element is not <rss>"));
        }
        let channel = root.child("channel").ok_or_else(|| shape("missing <channel>"))?;
        let title = channel.child("title").map(|t| t.text()).unwrap_or_default();
        let mut entries = Vec::new();
        for item in channel.children_named("item") {
            entries.push(RssEntry {
                title: item.child("title").map(|t| t.text()).unwrap_or_default(),
                link: item.child("link").map(|t| t.text()).unwrap_or_default(),
                guid: item
                    .child("guid")
                    .map(|t| t.text())
                    .ok_or_else(|| shape("item missing <guid>"))?,
                category: item.child("category").map(|t| t.text()),
            });
        }
        Ok(RssChannel { title, entries })
    }
}

/// Transforms successive polls of an RSS channel into a stream of fresh
/// news items for one publisher.
#[derive(Debug)]
pub struct RssIngestAgent {
    publisher: PublisherId,
    next_seq: u64,
    seen_guids: HashSet<String>,
    default_category: Category,
}

impl RssIngestAgent {
    /// Creates an agent publishing as `publisher`; entries without a
    /// recognizable category get `default_category`.
    pub fn new(publisher: PublisherId, default_category: Category) -> Self {
        RssIngestAgent { publisher, next_seq: 0, seen_guids: HashSet::new(), default_category }
    }

    /// Number of distinct entries ingested so far.
    pub fn ingested(&self) -> usize {
        self.seen_guids.len()
    }

    /// Ingests one poll of the channel, returning news items for entries
    /// not seen in any earlier poll (newest last, ready to publish in
    /// order).
    pub fn ingest(&mut self, channel: &RssChannel) -> Vec<NewsItem> {
        let mut fresh = Vec::new();
        // RSS lists newest first; emit oldest first.
        for entry in channel.entries.iter().rev() {
            if !self.seen_guids.insert(entry.guid.clone()) {
                continue;
            }
            let category = entry
                .category
                .as_deref()
                .and_then(|c| c.to_lowercase().parse::<Category>().ok())
                .unwrap_or(self.default_category);
            let item = NewsItem::builder(self.publisher, self.next_seq)
                .headline(entry.title.clone())
                .category(category)
                .subject(Subject::new(vec![u16::from(category.bit()) + 1]))
                .urgency(Urgency::ROUTINE)
                .body_len(1200)
                .meta("link", entry.link.clone())
                .meta("guid", entry.guid.clone())
                .build();
            self.next_seq += 1;
            fresh.push(item);
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(guids: &[&str]) -> RssChannel {
        RssChannel {
            title: "Slashdot".into(),
            entries: guids
                .iter()
                .map(|g| RssEntry {
                    title: format!("Story {g}"),
                    link: format!("https://example.org/{g}"),
                    guid: (*g).to_owned(),
                    category: Some("technology".into()),
                })
                .collect(),
        }
    }

    #[test]
    fn xml_roundtrip() {
        let c = channel(&["a1", "a2"]);
        let back = RssChannel::from_xml(&c.to_xml()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_non_rss() {
        assert!(RssChannel::from_xml("<html/>").is_err());
        assert!(RssChannel::from_xml("<rss><channel><item/></channel></rss>").is_err());
    }

    #[test]
    fn ingest_deduplicates_across_polls() {
        let mut agent = RssIngestAgent::new(PublisherId(3), Category::Technology);
        let first = agent.ingest(&channel(&["a", "b"]));
        assert_eq!(first.len(), 2);
        // Front page rolls: "c" is new, "b" repeats.
        let second = agent.ingest(&channel(&["c", "b"]));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].headline, "Story c");
        assert_eq!(agent.ingested(), 3);
        // Sequence numbers are dense and publisher-scoped.
        assert_eq!(second[0].id.seq, 2);
        assert_eq!(second[0].id.publisher, PublisherId(3));
    }

    #[test]
    fn ingest_oldest_first_and_categorized() {
        let mut agent = RssIngestAgent::new(PublisherId(3), Category::World);
        let items = agent.ingest(&channel(&["new", "old"]));
        assert_eq!(items[0].headline, "Story old");
        assert_eq!(items[1].headline, "Story new");
        assert_eq!(items[0].categories, vec![Category::Technology]);
    }

    #[test]
    fn unknown_category_falls_back() {
        let mut agent = RssIngestAgent::new(PublisherId(3), Category::World);
        let mut c = channel(&["x"]);
        c.entries[0].category = Some("weird-vertical".into());
        let items = agent.ingest(&c);
        assert_eq!(items[0].categories, vec![Category::World]);
    }

    #[test]
    fn metadata_carries_link_and_guid() {
        let mut agent = RssIngestAgent::new(PublisherId(3), Category::World);
        let items = agent.ingest(&channel(&["k"]));
        assert_eq!(items[0].field("guid").as_deref(), Some("k"));
        assert!(items[0].field("link").unwrap().contains("/k"));
    }
}
