//! The chaos-testing invariant oracle.
//!
//! Fault-injection runs (the fuzz suite, E13, `examples/chaos_day`) all ask
//! the same three questions of a finished deployment, so the checks live
//! here once:
//!
//! 1. **No duplicate deliveries** — a node's application sees each item at
//!    most once, no matter how many redundant representatives, retries, or
//!    network-level duplications raced to deliver it.
//! 2. **No unwanted deliveries** — everything a node's application received
//!    matches its exact subscription (Bloom aliasing must be caught by the
//!    §6 final test, repair must re-filter).
//! 3. **Eventual delivery** — every *continuously live* node whose
//!    subscription matches a published item eventually holds it. Nodes that
//!    crashed during the run are exempt from this check (they may have been
//!    down at the wrong moment) but still subject to the first two.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use newsml::{ItemId, NewsItem};
use simnet::NodeId;

use crate::deploy::Deployment;

/// One invariant violation, attributed to a node and an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The node at fault.
    pub node: NodeId,
    /// The item involved.
    pub item: ItemId,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} / item {}:{}", self.node.0, self.item.publisher.0, self.item.seq)
    }
}

/// The oracle's findings over one finished run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Nodes examined.
    pub nodes_checked: usize,
    /// Published items examined.
    pub items_checked: usize,
    /// Nodes exempt from the eventual-delivery check (they churned).
    pub exempt_nodes: usize,
    /// Items an application saw more than once.
    pub duplicate_deliveries: Vec<Violation>,
    /// Items delivered to an application whose subscription rejects them.
    pub unwanted_deliveries: Vec<Violation>,
    /// `(survivor, matching item)` pairs that never delivered.
    pub missed_deliveries: Vec<Violation>,
    /// `(survivor, matching item)` pairs expected to deliver.
    pub survivor_expected: u64,
    /// How many of those actually delivered.
    pub survivor_delivered: u64,
    /// `(survivor, publisher)` article logs left with holes — partition
    /// damage anti-entropy never reconciled. One violation per
    /// `(node, first missing seq)` pair.
    pub unconverged_logs: Vec<Violation>,
    /// Items an application delivered that no publisher ever published —
    /// fabricated content that slipped past signature verification (DESIGN
    /// §12). Empty on every defended run; the Byzantine ablations exist to
    /// make this list fill up.
    pub forged_deliveries: Vec<Violation>,
    /// Forged deliveries during the sanctioned key-compromise exposure
    /// window (DESIGN §15): the delivering node had not yet adopted the
    /// rotation record, so the stolen key was — from its vantage — still
    /// the publisher's valid key. Not a violation; the run's exposure
    /// metric. Only populated when the deployment scheduled a rotation.
    pub compromise_exposure: Vec<Violation>,
    /// Forged deliveries made by a node *after* it adopted the rotation
    /// record revoking the forger's key — the fence was armed and failed
    /// anyway. Always a violation; defended runs must keep this empty.
    pub post_revocation_forged: Vec<Violation>,
    /// Sanctioned re-deliveries after a retroactive purge (DESIGN §15): a
    /// stolen key can squat the publisher's *future* sequence numbers, so
    /// when the genuine item for such an id arrives post-rotation, the node
    /// — whose tainted copy was purged — correctly admits and delivers it
    /// again. At most one re-delivery per id is sanctioned, and only when
    /// the first delivery predates the node's rotation adoption; anything
    /// beyond that is a plain duplicate violation.
    pub purge_redeliveries: Vec<Violation>,
}

impl OracleReport {
    /// True when all three invariants held.
    pub fn holds(&self) -> bool {
        self.duplicate_deliveries.is_empty()
            && self.unwanted_deliveries.is_empty()
            && self.missed_deliveries.is_empty()
    }

    /// True when, additionally, every survivor's article logs are
    /// hole-free — the post-partition convergence invariant. Kept separate
    /// from [`OracleReport::holds`]: log convergence is only promised when
    /// anti-entropy reconciliation is enabled, and the ablation arms of the
    /// partition experiments deliberately run without it.
    pub fn converged(&self) -> bool {
        self.unconverged_logs.is_empty()
    }

    /// True when no application delivered an item outside the ground-truth
    /// published set — the whole-run forgery-safety verdict (DESIGN §12).
    /// Kept separate from [`OracleReport::holds`] for the same reason as
    /// [`OracleReport::converged`]: the forgery experiments' ablation arms
    /// run with signature enforcement off, and their oracle reports must
    /// still distinguish "missed a delivery" from "admitted a fake".
    pub fn no_forged_delivery(&self) -> bool {
        self.forged_deliveries.is_empty()
    }

    /// True when no node delivered forged content after adopting the
    /// revocation that outlawed its signing key — the trust-root rotation
    /// verdict (DESIGN §15). Vacuously true when no rotation was
    /// scheduled; deliveries inside the sanctioned exposure window (see
    /// [`OracleReport::compromise_exposure`]) do not count against it.
    pub fn no_post_revocation_delivery(&self) -> bool {
        self.post_revocation_forged.is_empty()
    }

    /// Fraction of `(survivor, matching item)` pairs that delivered
    /// (1.0 when nothing was expected).
    pub fn survivor_delivery_ratio(&self) -> f64 {
        if self.survivor_expected == 0 {
            1.0
        } else {
            self.survivor_delivered as f64 / self.survivor_expected as f64
        }
    }

    /// Panics with a readable report if any invariant failed.
    ///
    /// # Panics
    ///
    /// Panics when [`OracleReport::holds`] is false.
    pub fn assert_holds(&self) {
        assert!(self.holds(), "invariant oracle failed:\n{self}");
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle: {} ({} nodes, {} items, {} exempt; survivor delivery {}/{} = {:.1}%)",
            if self.holds() { "OK" } else { "VIOLATED" },
            self.nodes_checked,
            self.items_checked,
            self.exempt_nodes,
            self.survivor_delivered,
            self.survivor_expected,
            100.0 * self.survivor_delivery_ratio(),
        )?;
        if !self.converged() {
            writeln!(f, "  ({} unconverged article logs)", self.unconverged_logs.len())?;
        }
        if !self.no_forged_delivery() {
            writeln!(f, "  ({} forged deliveries)", self.forged_deliveries.len())?;
        }
        if !self.compromise_exposure.is_empty() {
            writeln!(
                f,
                "  ({} forged deliveries inside the sanctioned exposure window)",
                self.compromise_exposure.len()
            )?;
        }
        if !self.purge_redeliveries.is_empty() {
            writeln!(
                f,
                "  ({} sanctioned re-deliveries after retroactive purge)",
                self.purge_redeliveries.len()
            )?;
        }
        for (label, list) in [
            ("duplicate delivery", &self.duplicate_deliveries),
            ("unwanted delivery", &self.unwanted_deliveries),
            ("missed delivery", &self.missed_deliveries),
            ("unconverged log", &self.unconverged_logs),
            ("forged delivery", &self.forged_deliveries),
            ("post-revocation forged delivery", &self.post_revocation_forged),
        ] {
            for v in list.iter().take(8) {
                writeln!(f, "  {label}: {v}")?;
            }
            if list.len() > 8 {
                writeln!(f, "  … and {} more {label} violations", list.len() - 8)?;
            }
        }
        Ok(())
    }
}

/// Runs the three invariants over a finished deployment.
///
/// `items` are the ground-truth published items; `exempt` holds nodes that
/// were not continuously live (churned at least once), which the
/// eventual-delivery check skips. Publisher nodes are always exempt from
/// eventual delivery (they carry empty subscriptions anyway).
pub fn check_invariants(
    deployment: &Deployment,
    items: &[NewsItem],
    exempt: &BTreeSet<NodeId>,
) -> OracleReport {
    let by_id: HashMap<ItemId, &NewsItem> = items.iter().map(|i| (i.id, i)).collect();
    // Highest ground-truth sequence number per publisher, for the log
    // convergence check.
    let mut max_seq: HashMap<newsml::PublisherId, u64> = HashMap::new();
    for item in items {
        let e = max_seq.entry(item.id.publisher).or_insert(item.id.seq);
        *e = (*e).max(item.id.seq);
    }
    // The authoritative log epoch per publisher: whatever the publisher's
    // own node holds. A fabricated epoch that spread by reconciliation
    // contagion leaves subscribers sequencing a history the publisher
    // never started — coverage can look hole-free at the fake epoch, so
    // convergence must also mean epoch agreement with the authority.
    let authority_epoch: HashMap<newsml::PublisherId, u32> = deployment
        .publishers
        .iter()
        .map(|&(p, nid)| (p, deployment.sim.node(nid).article_log(p).map_or(0, |log| log.epoch())))
        .collect();
    let mut report = OracleReport {
        items_checked: items.len(),
        exempt_nodes: exempt.len(),
        ..OracleReport::default()
    };

    for (node_id, node) in deployment.sim.iter() {
        report.nodes_checked += 1;

        // Invariant 1: at most one application delivery per item. One
        // exception, only with a rotation in flight: an id first delivered
        // before this node adopted the revocation may be delivered once
        // more afterwards — the retroactive purge scrubbed the tainted
        // copy, and the genuine successor-key item takes its place.
        let mut seen: HashSet<ItemId> = HashSet::with_capacity(node.deliveries.len());
        let mut pre_adoption: HashSet<ItemId> = HashSet::new();
        for d in &node.deliveries {
            // Strictly after: a delivery stamped at the adoption instant
            // itself was admitted before the fence armed within that tick
            // (an armed fence would have refused it outright).
            let adopted_after = node.rotation_adopted_at.is_some_and(|t| d.delivered > t);
            if !seen.insert(d.item) {
                let sanctioned = deployment.revocation_at.is_some()
                    && adopted_after
                    && pre_adoption.remove(&d.item);
                if sanctioned {
                    report.purge_redeliveries.push(Violation { node: node_id, item: d.item });
                } else {
                    report.duplicate_deliveries.push(Violation { node: node_id, item: d.item });
                }
            } else if !adopted_after {
                pre_adoption.insert(d.item);
            }
            // Invariant 2: the exact subscription admits everything the
            // application saw. A delivered id absent from the ground-truth
            // set is fabricated content — no publisher ever issued it — and
            // lands in the forgery-safety verdict (DESIGN §12).
            match by_id.get(&d.item) {
                Some(item) => {
                    if !node.subscription.matches(item) {
                        report.unwanted_deliveries.push(Violation { node: node_id, item: d.item });
                    }
                }
                None => {
                    // With a rotation in flight, split by whether THIS
                    // node's fence was armed when it delivered: before
                    // adoption (inclusive — admissions stamped at the
                    // adoption instant preceded the fence within that tick)
                    // the stolen key was locally valid (exposure, DESIGN
                    // §15); after adoption it is a hard violation.
                    let sanctioned = deployment.revocation_at.is_some()
                        && node.rotation_adopted_at.is_none_or(|t| d.delivered <= t);
                    if sanctioned {
                        report.compromise_exposure.push(Violation { node: node_id, item: d.item });
                    } else {
                        report.forged_deliveries.push(Violation { node: node_id, item: d.item });
                        if deployment.revocation_at.is_some() {
                            report
                                .post_revocation_forged
                                .push(Violation { node: node_id, item: d.item });
                        }
                    }
                }
            }
        }

        // Invariant 3: continuously-live interested nodes deliver.
        if exempt.contains(&node_id) {
            continue;
        }
        let mut interested_publishers: BTreeSet<newsml::PublisherId> = BTreeSet::new();
        for item in items {
            if node.subscription.matches(item) {
                report.survivor_expected += 1;
                if seen.contains(&item.id) {
                    report.survivor_delivered += 1;
                } else {
                    report.missed_deliveries.push(Violation { node: node_id, item: item.id });
                }
                interested_publishers.insert(item.id.publisher);
            }
        }

        // Post-partition convergence: an interested survivor's article log
        // must be hole-free through the last ground-truth sequence number —
        // everything published while the node was unreachable has been seen
        // (delivered, or vouched unservable by a reconcile peer).
        for publisher in interested_publishers {
            let hw = max_seq[&publisher];
            match node.article_log(publisher) {
                None => {
                    report
                        .unconverged_logs
                        .push(Violation { node: node_id, item: ItemId::new(publisher, 0) });
                }
                Some(log) => {
                    if authority_epoch.get(&publisher).is_some_and(|&e| e != log.epoch()) {
                        report.unconverged_logs.push(Violation {
                            node: node_id,
                            item: ItemId::new(publisher, u64::from(log.epoch())),
                        });
                    } else if let Some(&(lo, _)) = log.gaps().first() {
                        report
                            .unconverged_logs
                            .push(Violation { node: node_id, item: ItemId::new(publisher, lo) });
                    } else if log.next_seq() <= hw {
                        report.unconverged_logs.push(Violation {
                            node: node_id,
                            item: ItemId::new(publisher, log.next_seq()),
                        });
                    }
                }
            }
        }
    }

    // Verdict counters land in the deployment's global metric set so the
    // drained telemetry carries the oracle's conclusion alongside the raw
    // traffic it judged.
    {
        use obs::ctr;
        let hub = deployment.sim.telemetry();
        let mut hub = hub.borrow_mut();
        let g = hub.global_mut();
        g.ctr_add(ctr::ORACLE_RUNS, 1);
        g.ctr_add(ctr::ORACLE_DUP_VIOLATIONS, report.duplicate_deliveries.len() as u64);
        g.ctr_add(ctr::ORACLE_UNWANTED_VIOLATIONS, report.unwanted_deliveries.len() as u64);
        g.ctr_add(ctr::ORACLE_MISSED_VIOLATIONS, report.missed_deliveries.len() as u64);
        g.ctr_add(ctr::ORACLE_UNCONVERGED_LOGS, report.unconverged_logs.len() as u64);
        g.ctr_add(ctr::ORACLE_FORGED_VIOLATIONS, report.forged_deliveries.len() as u64);
    }
    report
}

/// The verdict of [`self_stabilized`]: whether every invariant was restored
/// within the allotted number of gossip rounds after a corruption window.
#[derive(Debug, Clone)]
pub struct StabilizationReport {
    /// True when all invariants held (and logs converged) within budget.
    pub stabilized: bool,
    /// Gossip rounds actually stepped before the verdict (0 if the system
    /// was already clean when called).
    pub rounds_used: u32,
    /// The round budget the caller allowed.
    pub rounds_budget: u32,
    /// The oracle report from the final round checked.
    pub report: OracleReport,
}

impl fmt::Display for StabilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "self-stabilization: {} in {}/{} gossip rounds",
            if self.stabilized { "RESTORED" } else { "NOT RESTORED" },
            self.rounds_used,
            self.rounds_budget,
        )?;
        self.report.fmt(f)
    }
}

/// The self-stabilization oracle: steps the deployment one gossip round at
/// a time — call it *after* every corruption/liar window has closed — until
/// the three invariants hold and all article logs have converged, or
/// `within_rounds` rounds elapse.
///
/// A round is one Astrolabe gossip interval of simulated time; the verdict
/// is recorded in the global metric set (`oracle_stabilization_runs`) and
/// as a `self_stabilized` trace event (`a` = rounds used, `b` = 1 when
/// stabilized) so drained telemetry carries it.
pub fn self_stabilized(
    deployment: &mut Deployment,
    items: &[NewsItem],
    exempt: &BTreeSet<NodeId>,
    within_rounds: u32,
) -> StabilizationReport {
    let interval = deployment.config.astrolabe.gossip_interval;
    let mut rounds_used = 0u32;
    let clean = |r: &OracleReport| {
        r.holds() && r.converged() && r.no_forged_delivery() && r.no_post_revocation_delivery()
    };
    let mut report = check_invariants(deployment, items, exempt);
    while rounds_used < within_rounds && !clean(&report) {
        let deadline = deployment.sim.now() + interval;
        deployment.sim.run_until(deadline);
        rounds_used += 1;
        report = check_invariants(deployment, items, exempt);
    }
    let stabilized = clean(&report);
    if obs::ENABLED {
        let now_us = deployment.sim.now().as_micros();
        let hub = deployment.sim.telemetry();
        let mut hub = hub.borrow_mut();
        hub.global_mut().ctr_add(obs::ctr::ORACLE_STABILIZATION_RUNS, 1);
        hub.trace_at(
            now_us,
            u32::MAX,
            obs::Layer::News,
            obs::kind::SELF_STABILIZED,
            rounds_used as u64,
            stabilized as u64,
        );
    }
    StabilizationReport { stabilized, rounds_used, rounds_budget: within_rounds, report }
}

/// Distills a collusion sweep into its breaking point: the smallest colluding
/// fraction at which the system failed to self-stabilize. `samples` pairs
/// each run's colluding fraction with its stabilization verdict; the result
/// is `None` when every sampled fraction stabilized (no breaking point found
/// within the sweep). E18 reports this per adversary script, defended and
/// undefended — the defended column should be `None` up to the largest
/// fraction swept, the ablation column should break early.
pub fn collusion_breaking_point(samples: &[(f64, bool)]) -> Option<f64> {
    samples
        .iter()
        .filter(|(_, stabilized)| !stabilized)
        .map(|&(fraction, _)| fraction)
        .min_by(|a, b| a.total_cmp(b))
}
