//! Full-stack integration tests: publish → gossip-built tree → selective
//! forwarding → exact leaf matching → cache/repair.

use newsml::{Category, NewsItem, PublisherId, PublisherProfile, Subject};
use newswire::{
    tech_news_deployment, DeploymentBuilder, NewsWireConfig, PublisherSpec, SubscriptionModel,
};
use simnet::{NodeId, SimTime};

fn tech_item(seq: u64) -> NewsItem {
    NewsItem::builder(PublisherId(0), seq)
        .headline(format!("Tech story {seq}"))
        .category(Category::Technology)
        .subject(Subject::new(vec![u16::from(Category::Technology.bit()) + 1]))
        .build()
}

#[test]
fn exact_interest_set_receives_item() {
    let mut d = tech_news_deployment(80, 1);
    d.settle(60);
    let item = tech_item(0);
    d.publish(SimTime::from_secs(60), item.clone());
    d.settle(30);
    let interested = d.interested_nodes(&item);
    let delivered = d.delivered_nodes(&item);
    assert!(!interested.is_empty(), "workload should create interest");
    assert_eq!(interested, delivered, "delivery set must equal interest set");
}

#[test]
fn multiple_items_latency_within_tens_of_seconds() {
    let mut d = tech_news_deployment(100, 2);
    d.settle(60);
    for seq in 0..10 {
        d.publish(SimTime::from_secs(60 + seq), tech_item(seq));
    }
    d.settle(40);
    let mut lat = d.delivery_latency_summary();
    assert!(!lat.is_empty(), "no deliveries recorded");
    assert!(lat.quantile(0.5) < 5.0, "p50 {}s", lat.quantile(0.5));
    assert!(lat.max() < 30.0, "max {}s — must stay within tens of seconds", lat.max());
}

#[test]
fn publisher_load_is_constant_in_subscribers() {
    // E2's core claim at test scale: publisher traffic does not grow with
    // the audience.
    let mut sent = Vec::new();
    for &n in &[40u32, 160] {
        let mut d = tech_news_deployment(n, 3);
        d.settle(60);
        let publisher = d.publisher_node(PublisherId(0));
        let before = d.sim.counters(publisher).bytes_sent;
        for seq in 0..5 {
            d.publish(SimTime::from_secs(60), tech_item(seq));
        }
        d.settle(20);
        let after = d.sim.counters(publisher).bytes_sent;
        sent.push((after - before) as f64);
    }
    let growth = sent[1] / sent[0].max(1.0);
    assert!(growth < 3.0, "publisher bytes grew {growth}x for 4x subscribers");
}

#[test]
fn forged_publisher_is_rejected_everywhere() {
    let mut d = tech_news_deployment(40, 4);
    d.settle(60);
    // An item claiming to come from publisher 0 is injected at a non-
    // publisher node: the node refuses to originate it.
    let item = tech_item(99);
    let victim = NodeId(20);
    d.sim.schedule_external(
        SimTime::from_secs(60),
        victim,
        newswire::NewsWireMsg::PublishRequest { item: item.clone(), scope: None, predicate: None },
    );
    d.settle(20);
    assert!(d.delivered_nodes(&item).is_empty());
    assert!(d.sim.node(victim).stats.publish_denied > 0);
}

#[test]
fn flow_control_limits_flooding_publisher() {
    let mut d = DeploymentBuilder::new(30, 5)
        .branching(8)
        .publisher(PublisherSpec {
            profile: PublisherProfile::slashdot(PublisherId(0)),
            scope: astrolabe::ZoneId::root(),
            rate_per_min: 60, // 1/s sustained
            burst: 5,
        })
        .build();
    d.settle(60);
    // Fire 50 publish requests in one instant: only the burst passes.
    for seq in 0..50 {
        d.publish(SimTime::from_secs(60), tech_item(seq));
    }
    d.settle(10);
    let publisher = d.sim.node(d.publisher_node(PublisherId(0))).publisher().unwrap();
    assert_eq!(publisher.published, 5, "burst only");
    assert_eq!(publisher.rate_limited, 45);
}

#[test]
fn category_mask_prototype_also_delivers() {
    let mut d = DeploymentBuilder::new(60, 6)
        .branching(8)
        .config(NewsWireConfig::prototype_masks())
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    assert_eq!(d.config.model, SubscriptionModel::CategoryMask);
    d.settle(60);
    let item = tech_item(0);
    d.publish(SimTime::from_secs(60), item.clone());
    d.settle(30);
    let interested = d.interested_nodes(&item);
    let delivered = d.delivered_nodes(&item);
    assert!(!interested.is_empty());
    assert_eq!(interested, delivered);
}

#[test]
fn late_joiner_receives_state_transfer() {
    let mut d = tech_news_deployment(60, 7);
    d.settle(60);
    // Publish while node 30 is down.
    let victim = NodeId(30);
    d.sim.schedule_crash(SimTime::from_secs(60), victim);
    let item = tech_item(0);
    d.publish(SimTime::from_secs(70), item.clone());
    d.settle(30);
    let interested = d.interested_nodes(&item);
    if !interested.contains(&victim) {
        // The sampled subscription doesn't cover the item; nothing to test
        // for this seed — but the deployment must still have delivered.
        assert!(!d.delivered_nodes(&item).is_empty());
        return;
    }
    assert!(!d.sim.node(victim).has_item(item.id), "down node cannot deliver");
    // Recover; cache repair / state transfer must backfill the item.
    d.sim.schedule_recover(SimTime::from_secs(90), victim);
    d.settle(120);
    assert!(
        d.sim.node(victim).has_item(item.id),
        "recovered node must receive the missed item via repair"
    );
    let rec = d.sim.node(victim).deliveries.iter().find(|r| r.item == item.id).unwrap();
    assert!(rec.via_repair, "delivery must be attributed to the repair path");
}

#[test]
fn predicate_subscriptions_filter_at_leaf() {
    let mut d = tech_news_deployment(50, 8);
    d.settle(60);
    // Find a node interested in tech items and restrict it by urgency.
    let item = tech_item(0);
    let interested = d.interested_nodes(&item);
    let probe = *interested.first().expect("someone is interested");
    d.sim.node_mut(probe).subscription.set_predicate("urgency = 1").unwrap();
    // The published item has default urgency (5): predicate must filter it.
    d.publish(SimTime::from_secs(60), item.clone());
    d.settle(30);
    assert!(!d.sim.node(probe).has_item(item.id));
    assert!(d.sim.node(probe).stats.predicate_filtered > 0);
    // But the item is still in its cache (delivered to cache, not app).
    assert!(d.sim.node(probe).cache.contains(item.id));
}

#[test]
fn revisions_fuse_in_subscriber_caches() {
    let mut d = tech_news_deployment(40, 9);
    d.settle(60);
    let v0 = tech_item(0);
    d.publish(SimTime::from_secs(60), v0.clone());
    d.settle(15);
    let v1 = NewsItem::builder(PublisherId(0), 1)
        .headline(v0.headline.clone())
        .slug(v0.slug.clone())
        .category(Category::Technology)
        .subject(Subject::new(vec![u16::from(Category::Technology.bit()) + 1]))
        .revision(1, Some(v0.id))
        .build();
    d.publish(SimTime::from_secs(75), v1.clone());
    d.settle(30);
    for id in d.interested_nodes(&v1) {
        let node = d.sim.node(id);
        assert!(node.cache.contains(v1.id), "node {id} lacks the revision");
        assert!(!node.cache.contains(v0.id), "node {id} kept the stale revision");
    }
}

#[test]
fn deployment_is_deterministic() {
    let run = |seed: u64| {
        let mut d = tech_news_deployment(40, seed);
        d.settle(60);
        let item = tech_item(0);
        d.publish(SimTime::from_secs(60), item.clone());
        d.settle(20);
        (d.delivered_nodes(&item), d.sim.total_counters().msgs_sent)
    };
    assert_eq!(run(11), run(11));
}

#[test]
fn publisher_predicate_restricts_to_premium_subscribers() {
    // The §8 extension: "a publisher could send some item only to premium
    // subscribers". Premium status is a per-node attribute, SUM-aggregated
    // up the tree; the publisher attaches `premium > 0` to the item.
    let mut config = NewsWireConfig::tech_news();
    config
        .astrolabe
        .aggregations
        .push(astrolabe::AggSpec::new("premium", "SELECT SUM(premium) AS premium"));
    let mut d = DeploymentBuilder::new(60, 21)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    // Every third subscriber is premium.
    let premium: Vec<NodeId> = (1..61).filter(|i| i % 3 == 0).map(NodeId).collect();
    for &p in &premium {
        d.sim.node_mut(p).agent.set_local_attr("premium", 1i64);
    }
    d.settle(60);

    let item = tech_item(0);
    d.publish_with_predicate(SimTime::from_secs(60), item.clone(), "premium > 0");
    d.settle(25);

    for (id, node) in d.sim.iter() {
        let should = premium.contains(&id) && node.subscription.matches(&item);
        assert_eq!(
            node.has_item(item.id),
            should,
            "node {id}: premium={} matches={}",
            premium.contains(&id),
            node.subscription.matches(&item)
        );
    }
    // And the item genuinely reached someone.
    assert!(
        d.sim.iter().any(|(_, n)| n.has_item(item.id)),
        "at least one premium subscriber must deliver"
    );
}

#[test]
fn malformed_publisher_predicate_is_rejected() {
    let mut d = tech_news_deployment(30, 22);
    d.settle(60);
    let item = tech_item(0);
    d.publish_with_predicate(SimTime::from_secs(60), item.clone(), "not ((( sql");
    d.settle(15);
    assert!(d.delivered_nodes(&item).is_empty());
    let publisher = d.publisher_node(PublisherId(0));
    assert!(d.sim.node(publisher).stats.publish_denied > 0);
}

#[test]
fn subscription_change_takes_effect_within_tens_of_seconds() {
    // §6 end to end: a *new* subscription must climb to the root summaries
    // before items start flowing to the node — "within tens of seconds".
    let mut d = tech_news_deployment(60, 31);
    d.settle(60);
    // Pick a node with no interest in science from publisher 0.
    let science = NewsItem::builder(PublisherId(0), 100)
        .headline("before change")
        .category(Category::Science)
        .build();
    let uninterested = (1..61)
        .map(NodeId)
        .find(|&n| !d.sim.node(n).subscription.matches(&science))
        .expect("someone is uninterested in science");
    // Baseline: a science item published now does NOT reach it.
    d.publish(SimTime::from_secs(60), science.clone());
    d.settle(20);
    assert!(!d.sim.node(uninterested).has_item(science.id));

    // The user subscribes; the node republishes its summary attributes.
    {
        let node = d.sim.node_mut(uninterested);
        let mut sub = node.subscription.clone();
        sub.subscribe_category(PublisherId(0), Category::Science);
        node.set_subscription(sub);
    }
    // Give gossip "tens of seconds" to aggregate the new bits upward.
    d.settle(40);
    let after = NewsItem::builder(PublisherId(0), 101)
        .headline("after change")
        .category(Category::Science)
        .build();
    let now = d.sim.now();
    d.publish(now, after.clone());
    d.settle(20);
    assert!(
        d.sim.node(uninterested).has_item(after.id),
        "new subscription must route items within tens of seconds"
    );
}
