//! End-to-end Byzantine-defense checks over a running deployment: the
//! signed epoch fence refuses a fabricated reconcile-reply epoch that the
//! defenses-off ablation happily adopts, and the bare-item admission funnel
//! refuses forged repair traffic while admitting genuinely signed items —
//! all driven through real wire messages, not internal calls.

use amcast::RangeSummary;
use astrolabe::{KeyId, Signature, TrustRegistry, ZoneId};
use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{
    issue_publisher, DeploymentBuilder, NewsWireConfig, NewsWireMsg, PublisherSpec, SignedItem,
};
use simnet::{NodeId, SimTime};

const N: u32 = 24;
const VICTIM: NodeId = NodeId(10);

fn deployment(defenses: bool, seed: u64) -> newswire::Deployment {
    let mut config = NewsWireConfig::tech_news();
    config.defenses = defenses;
    let mut d = DeploymentBuilder::new(N, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(60);
    // Give every node a real epoch-0 article log to defend.
    for seq in 0..4u64 {
        let item = NewsItem::builder(PublisherId(0), seq)
            .headline(format!("real {seq}"))
            .category(Category::Technology)
            .build();
        d.publish(SimTime::from_secs(60 + seq), item);
    }
    d.settle(30);
    d
}

/// The deployment's publisher credential, reconstructed from the same
/// deterministic registry seed `DeploymentBuilder::build` uses — how the
/// test signs items the deployment's nodes will accept.
fn publisher_credential(seed: u64) -> newswire::PublisherCredential {
    let mut registry = TrustRegistry::new(seed);
    issue_publisher(&mut registry, PublisherId(0), "slashdot", &ZoneId::root(), 6000)
}

/// A reconcile reply claiming a fabricated future epoch — the contagion
/// vector a captured zone majority uses to spread a history that never
/// happened.
fn captured_epoch_reply() -> NewsWireMsg {
    NewsWireMsg::ReconcileReply {
        publisher: PublisherId(0),
        summary: RangeSummary { epoch: 100, floor: 0, next: 9, present: 9 },
        attest: None,
        items: vec![],
    }
}

#[test]
fn signed_epoch_fence_refuses_fabricated_reconcile_epoch() {
    let mut d = deployment(true, 7);
    assert_eq!(
        d.sim.node(VICTIM).article_log(PublisherId(0)).map(|l| l.epoch()),
        Some(0),
        "victim holds a real epoch-0 log before the attack"
    );
    d.sim.schedule_external(SimTime::from_secs(95), VICTIM, captured_epoch_reply());
    d.settle(10);
    let victim = d.sim.node(VICTIM);
    assert_eq!(victim.article_log(PublisherId(0)).map(|l| l.epoch()), Some(0), "epoch held");
    assert_eq!(victim.stats.signed_epoch_refusals, 1, "the refusal was signed-authority-backed");
}

#[test]
fn ablation_without_defenses_adopts_the_fabricated_epoch() {
    let mut d = deployment(false, 7);
    d.sim.schedule_external(SimTime::from_secs(95), VICTIM, captured_epoch_reply());
    d.settle(10);
    let victim = d.sim.node(VICTIM);
    assert_eq!(
        victim.article_log(PublisherId(0)).map(|l| l.epoch()),
        Some(100),
        "defenses off adopts the fabricated epoch — the E18 ablation in miniature"
    );
    assert_eq!(victim.stats.signed_epoch_refusals, 0);
}

#[test]
fn repair_reply_funnel_refuses_forged_items_but_admits_signed_ones() {
    let mut d = deployment(true, 7);
    let cred = publisher_credential(7);

    // A forged item under an invented signature, plus a genuine one the
    // publisher really signed, arriving in the same repair batch.
    let forged = NewsItem::builder(PublisherId(0), 50)
        .headline("FORGED dispatch 50")
        .category(Category::Technology)
        .build();
    let genuine = NewsItem::builder(PublisherId(0), 60)
        .headline("late real dispatch")
        .category(Category::Technology)
        .build();
    let genuine_sig = cred.sign(&genuine);
    let reply = NewsWireMsg::RepairReply {
        items: vec![
            SignedItem {
                item: forged.clone(),
                key: KeyId(123),
                signature: Signature(456),
                basis: None,
            },
            SignedItem {
                item: genuine.clone(),
                key: cred.key_id(),
                signature: genuine_sig,
                basis: None,
            },
        ],
    };
    let before = d.sim.node(VICTIM).stats.forged_rejects;
    d.sim.schedule_external(SimTime::from_secs(95), VICTIM, reply);
    d.settle(10);
    let victim = d.sim.node(VICTIM);
    assert_eq!(victim.stats.forged_rejects, before + 1, "the forged item was refused");
    assert!(!victim.has_item(forged.id), "forged content never reached the application");
    if victim.subscription.matches(&genuine) {
        assert!(victim.has_item(genuine.id), "the genuinely signed item admitted");
    }
}
