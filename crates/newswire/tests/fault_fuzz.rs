//! Randomized fault injection: under seeded chaos plans — Poisson churn,
//! gray brownouts, network duplication/reordering, bounded loss — and
//! ongoing publishing, the system must uphold its core invariants: no
//! duplicate application deliveries, no deliveries to uninterested nodes,
//! no unauthenticated items, and eventual delivery to every
//! continuously-live interested node. Every run is replayable bit-for-bit
//! from its seed.

use std::collections::{BTreeSet, HashSet};

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{check_invariants, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use rand::Rng;
use simnet::{
    fork, ChurnSpec, CollusionScript, CollusionSpec, FaultCounters, FaultPlan, ForgeSpec,
    GrayProfile, GraySpec, KeyCompromiseSpec, MessageChaosSpec, NodeId, SimDuration, SimTime,
    SybilSpec,
};

/// Subscriber count; the deployment adds one publisher at node 0.
const N: u32 = 120;

/// Draws the seeded chaos plan for one fuzz run: Poisson churn over up to
/// 12 victims, a gray brownout over up to 8 further nodes, and a
/// duplication/reordering window across the whole fault era. Node 0 (the
/// publisher) is spared.
fn plan_for(seed: u64) -> FaultPlan {
    let mut rng = fork(seed, 0xF0);
    let mut picked: HashSet<u32> = HashSet::new();
    let mut victims = Vec::new();
    for _ in 0..12 {
        // Subscribers occupy `1..=N`; draw from `1..N` so the publisher at
        // node 0 is never hit and the bound stays obviously in range.
        let v = rng.gen_range(1..N);
        if picked.insert(v) {
            victims.push(NodeId(v));
        }
    }
    let mut browned = Vec::new();
    for _ in 0..8 {
        let v = rng.gen_range(1..N);
        if picked.insert(v) {
            browned.push(NodeId(v));
        }
    }
    FaultPlan {
        salt: seed,
        churn: vec![ChurnSpec {
            nodes: victims,
            start: SimTime::from_secs(90),
            end: SimTime::from_secs(140),
            mean_up_secs: 20.0,
            mean_down_secs: 12.0,
            recover_at_end: true,
            restart: simnet::RestartMode::Freeze,
        }],
        gray: vec![GraySpec {
            nodes: browned,
            start: SimTime::from_secs(95),
            end: Some(SimTime::from_secs(145)),
            profile: GrayProfile::brownout(),
        }],
        link_cuts: vec![],
        partitions: vec![],
        message_chaos: vec![MessageChaosSpec {
            start: SimTime::from_secs(90),
            end: Some(SimTime::from_secs(145)),
            dup_prob: 0.05,
            reorder_prob: 0.25,
            reorder_jitter: SimDuration::from_millis(40),
        }],
        corruption: vec![],
        liars: vec![],
        collusion: vec![],
        forgery: vec![],
        key_compromise: vec![],
        sybil: vec![],
    }
}

/// Draws the seeded Byzantine plan for one fuzz run: a colluding group
/// jointly capturing publisher 0's log epoch, plus a separate clique of
/// forgers fabricating items under bogus signatures. Node 0 (the publisher)
/// is spared, and colluders/forgers are disjoint.
fn byzantine_plan_for(seed: u64) -> FaultPlan {
    let mut rng = fork(seed, 0xB7);
    let mut picked: HashSet<u32> = HashSet::new();
    let draw = |rng: &mut _, picked: &mut HashSet<u32>, n: usize| {
        let mut out = Vec::new();
        while out.len() < n {
            let v: u32 = rand::Rng::gen_range(rng, 1..N);
            if picked.insert(v) {
                out.push(NodeId(v));
            }
        }
        out
    };
    let colluders = draw(&mut rng, &mut picked, 5);
    let forgers = draw(&mut rng, &mut picked, 3);
    FaultPlan {
        salt: seed,
        churn: vec![],
        gray: vec![],
        link_cuts: vec![],
        partitions: vec![],
        message_chaos: vec![],
        corruption: vec![],
        liars: vec![],
        collusion: vec![CollusionSpec {
            nodes: colluders,
            start: SimTime::from_secs(90),
            end: SimTime::from_secs(140),
            mean_interval_secs: 6.0,
            script: CollusionScript::EpochCapture { publisher: 0 },
        }],
        forgery: vec![ForgeSpec {
            nodes: forgers,
            start: SimTime::from_secs(90),
            end: SimTime::from_secs(140),
            mean_interval_secs: 8.0,
            items_per_strike: 3,
            publisher: 0,
        }],
        key_compromise: vec![],
        sybil: vec![],
    }
}

/// One Byzantine chaos run with defenses on. Returns the same replayable
/// fingerprint as [`fuzz_once`]; asserts the forgery-safety verdict and
/// that the adversary actually struck.
fn byzantine_once(seed: u64) -> (Vec<(u32, u64, u64)>, FaultCounters) {
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    let mut d = DeploymentBuilder::new(N, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(90);

    let plan = byzantine_plan_for(seed);
    d.sim.apply_fault_plan(&plan);

    let items: Vec<NewsItem> = (0..12u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("byz {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(92 + 3 * i as u64), item.clone());
    }
    d.settle(150);

    let counters = d.sim.fault_counters();
    assert!(counters.collusion_strikes > 0, "seed {seed}: collusion never struck");
    assert!(counters.forged_items_injected > 0, "seed {seed}: forgery never injected");

    // Byzantine nodes are exempt from eventual delivery (their own state
    // was puppeted — e.g. an epoch-captured log dedups real items as
    // already-seen) but every honest node is held to every invariant, and
    // with defenses on, no forged item may have reached ANY application —
    // colluders and forgers included.
    let mut exempt: BTreeSet<NodeId> = plan.colluding_nodes();
    exempt.extend(plan.forging_nodes());
    let report = check_invariants(&d, &items, &exempt);
    assert!(report.survivor_expected > 0, "seed {seed}: vacuous oracle run");
    assert!(report.no_forged_delivery(), "seed {seed}: forged delivery: {report}");
    assert!(report.holds(), "seed {seed}: {report}");

    let mut fingerprint = Vec::new();
    for (id, node) in d.sim.iter() {
        for rec in &node.deliveries {
            fingerprint.push((id.0, rec.msg_id, rec.delivered.since(SimTime::ZERO).as_micros()));
        }
    }
    (fingerprint, counters)
}

/// Draws the seeded trust-root plan for one fuzz run: a stolen-key window
/// (the adversary signs forgeries and bogus attestations with publisher 0's
/// real key) plus a Sybil identity burst. Node 0 (the publisher) is spared,
/// and thieves/Sybil strikers are disjoint.
fn trust_plan_for(seed: u64) -> FaultPlan {
    let mut rng = fork(seed, 0x7A);
    let mut picked: HashSet<u32> = HashSet::new();
    let draw = |rng: &mut _, picked: &mut HashSet<u32>, n: usize| {
        let mut out = Vec::new();
        while out.len() < n {
            let v: u32 = rand::Rng::gen_range(rng, 1..N);
            if picked.insert(v) {
                out.push(NodeId(v));
            }
        }
        out
    };
    let thieves = draw(&mut rng, &mut picked, 3);
    let sybils = draw(&mut rng, &mut picked, 2);
    FaultPlan {
        salt: seed,
        churn: vec![],
        gray: vec![],
        link_cuts: vec![],
        partitions: vec![],
        message_chaos: vec![],
        corruption: vec![],
        liars: vec![],
        collusion: vec![],
        forgery: vec![],
        // The window opens at t=105, after the real stream has circulated,
        // so forged seqs land beyond the published range and stay visible
        // to the oracle as forgeries rather than colliding with real ids.
        key_compromise: vec![KeyCompromiseSpec {
            nodes: thieves,
            start: SimTime::from_secs(105),
            end: SimTime::from_secs(135),
            mean_interval_secs: 6.0,
            items_per_strike: 2,
            attest_bump: 2,
            publisher: 0,
        }],
        sybil: vec![SybilSpec {
            nodes: sybils,
            start: SimTime::from_secs(95),
            end: SimTime::from_secs(140),
            mean_interval_secs: 7.0,
            identities_per_strike: 6,
            publisher: 0,
        }],
    }
}

/// One trust-root chaos run with defenses and admission control on: the
/// adversary holds publisher 0's real signing key mid-run, the registry
/// revokes it at t=125, and the revocation record must propagate and fence
/// every admission path. Returns the same replayable fingerprint as
/// [`fuzz_once`]; asserts the revocation-safety verdict and that both
/// adversaries actually struck.
fn trust_once(seed: u64) -> (Vec<(u32, u64, u64)>, FaultCounters) {
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    config.admission = true;
    let mut d = DeploymentBuilder::new(N, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(90);

    let plan = trust_plan_for(seed);
    d.sim.apply_fault_plan(&plan);

    let items: Vec<NewsItem> = (0..12u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("trust {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(92 + i as u64), item.clone());
    }
    // Revocation lands mid-window: strikes before t=125 are the sanctioned
    // exposure, strikes after it must bounce off every fence.
    d.schedule_rotation(SimTime::from_secs(125), PublisherId(0), 4);
    d.settle(200);

    let counters = d.sim.fault_counters();
    assert!(counters.key_compromise_strikes > 0, "seed {seed}: stolen key never struck");
    assert!(counters.sybil_joins_attempted > 0, "seed {seed}: Sybil burst never struck");

    for (id, node) in d.sim.iter() {
        assert!(
            node.rotation_adopted_at.is_some(),
            "seed {seed}: node {id} never adopted the rotation"
        );
    }

    // Thieves and Sybil strikers are exempt from eventual delivery (their
    // own state was puppeted), but no node — them included — may deliver
    // forged content after adopting the revocation.
    let mut exempt: BTreeSet<NodeId> = plan.compromised_nodes();
    exempt.extend(plan.sybil_nodes());
    let report = check_invariants(&d, &items, &exempt);
    assert!(report.survivor_expected > 0, "seed {seed}: vacuous oracle run");
    assert!(
        report.no_post_revocation_delivery(),
        "seed {seed}: post-revocation forged delivery: {report}"
    );
    assert!(report.holds(), "seed {seed}: {report}");

    let mut fingerprint = Vec::new();
    for (id, node) in d.sim.iter() {
        for rec in &node.deliveries {
            fingerprint.push((id.0, rec.msg_id, rec.delivered.since(SimTime::ZERO).as_micros()));
        }
    }
    (fingerprint, counters)
}

/// One full chaos run. Returns a fingerprint of every application delivery
/// `(node, msg_id, delivered_us)` plus the engine's fault counters, so
/// replays can be compared bit-for-bit.
fn fuzz_once(seed: u64) -> (Vec<(u32, u64, u64)>, FaultCounters) {
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    let mut d = DeploymentBuilder::new(N, seed)
        .branching(8)
        .config(config)
        .wan(0.02)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(90);

    let plan = plan_for(seed);
    d.sim.apply_fault_plan(&plan);

    let items: Vec<NewsItem> = (0..12u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("fuzz {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(92 + 3 * i as u64), item.clone());
    }
    // Churn recovers everyone by t=140, brownouts and message chaos heal at
    // t=145; the long tail gives anti-entropy repair time to backfill.
    d.settle(150);

    for (id, node) in d.sim.iter() {
        assert_eq!(node.stats.auth_rejects, 0, "seed {seed}: unexpected auth rejects at {id}");
    }

    // The shared oracle: no dups, no unwanted deliveries anywhere; eventual
    // delivery for every node outside the churn set.
    let exempt: BTreeSet<NodeId> = plan.churned_nodes();
    let report = check_invariants(&d, &items, &exempt);
    assert!(report.survivor_expected > 0, "seed {seed}: vacuous oracle run");
    assert!(report.holds(), "seed {seed}: {report}");

    // Stronger liveness: churned nodes all recovered before the end and
    // repair backfills them, so even they must hold every matching item.
    for item in &items {
        for node in d.interested_nodes(item) {
            assert!(
                d.sim.node(node).has_item(item.id),
                "seed {seed}: node {node} missing item {} (churned: {})",
                item.id,
                exempt.contains(&node)
            );
        }
    }

    let mut fingerprint = Vec::new();
    for (id, node) in d.sim.iter() {
        for rec in &node.deliveries {
            fingerprint.push((id.0, rec.msg_id, rec.delivered.since(SimTime::ZERO).as_micros()));
        }
    }
    (fingerprint, d.sim.fault_counters())
}

#[test]
fn fuzz_chaos_plans_uphold_invariants() {
    for seed in 1..=8u64 {
        fuzz_once(seed);
    }
}

#[test]
fn fuzz_runs_replay_bit_for_bit() {
    let first = fuzz_once(42);
    let again = fuzz_once(42);
    assert_eq!(first, again, "same seed must replay identically");
    let other = fuzz_once(43);
    assert_ne!(first.0, other.0, "different seeds must diverge");
}

#[test]
fn trust_fuzz_upholds_revocation_safety() {
    for seed in 1..=3u64 {
        trust_once(seed);
    }
}

#[test]
fn trust_fuzz_replays_bit_for_bit() {
    let first = trust_once(42);
    let again = trust_once(42);
    assert_eq!(first, again, "same seed must replay identically, strikes included");
    let other = trust_once(43);
    assert_ne!(
        (&first.1.key_compromise_strikes, &first.1.sybil_joins_attempted, &first.0),
        (&other.1.key_compromise_strikes, &other.1.sybil_joins_attempted, &other.0),
        "different seeds must diverge"
    );
}

#[test]
fn byzantine_fuzz_upholds_forgery_safety() {
    for seed in 1..=3u64 {
        byzantine_once(seed);
    }
}

#[test]
fn byzantine_fuzz_replays_bit_for_bit() {
    let first = byzantine_once(42);
    let again = byzantine_once(42);
    assert_eq!(first, again, "same seed must replay identically, strikes included");
    let other = byzantine_once(43);
    assert_ne!(
        (&first.1.collusion_strikes, &first.1.forged_items_injected, &first.0),
        (&other.1.collusion_strikes, &other.1.forged_items_injected, &other.0),
        "different seeds must diverge"
    );
}
