//! Randomized fault injection: under arbitrary (seeded) crash/recover
//! schedules, bounded loss and ongoing publishing, the system must uphold
//! its core invariants — no duplicate application deliveries, no deliveries
//! to uninterested nodes, no unauthenticated items, and eventual delivery
//! to every continuously-live interested node.

use newsml::{PublisherId, PublisherProfile};
use newswire::{DeploymentBuilder, NewsWireConfig, PublisherSpec};
use rand::Rng;
use simnet::{fork, NodeId, SimTime};

use newsml::Category;

fn fuzz_once(seed: u64) {
    let n: u32 = 120;
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    let mut d = DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .wan(0.02)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(90);

    let mut rng = fork(seed, 0xF0);
    // Random crash/recover schedule over 60 s for up to 12 victims. Node 0
    // (the publisher) is spared.
    let mut victims = Vec::new();
    for _ in 0..12 {
        let v = rng.gen_range(1..=n);
        if victims.contains(&v) {
            continue;
        }
        victims.push(v);
        let down_at = 90 + rng.gen_range(0..40);
        let up_at = down_at + rng.gen_range(10..60);
        d.sim.schedule_crash(SimTime::from_secs(down_at), NodeId(v));
        d.sim.schedule_recover(SimTime::from_secs(up_at), NodeId(v));
    }

    let items: Vec<_> = (0..12u64)
        .map(|s| {
            newsml::NewsItem::builder(PublisherId(0), s)
                .headline(format!("fuzz {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(92 + 3 * i as u64), item.clone());
    }
    // Long horizon: all victims recovered by t=190; repair has time to run.
    d.settle(220);

    for (id, node) in d.sim.iter() {
        // Invariant: at most one application delivery per item.
        let mut seen = std::collections::HashSet::new();
        for rec in &node.deliveries {
            assert!(seen.insert(rec.item), "seed {seed}: node {id} double-delivered {}", rec.item);
        }
        // Invariant: only matching items reach the application.
        for rec in &node.deliveries {
            let item = items.iter().find(|i| i.id == rec.item);
            if let Some(item) = item {
                assert!(
                    node.subscription.matches(item),
                    "seed {seed}: node {id} delivered unwanted {}",
                    rec.item
                );
            }
        }
        // Invariant: nothing unauthenticated slipped through.
        assert_eq!(node.stats.auth_rejects, 0, "seed {seed}: unexpected auth rejects at {id}");
    }

    // Liveness: every interested node delivered every item eventually
    // (victims included — they recovered and repair backfills).
    for item in &items {
        for node in d.interested_nodes(item) {
            assert!(
                d.sim.node(node).has_item(item.id),
                "seed {seed}: node {node} missing item {} (victim: {})",
                item.id,
                victims.contains(&node.0)
            );
        }
    }
}

#[test]
fn fuzz_crash_recover_schedules() {
    for seed in [1u64, 2, 3] {
        fuzz_once(seed);
    }
}
