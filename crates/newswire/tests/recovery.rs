//! Cold-restart recovery, end to end: a subscriber crashes mid-run and
//! comes back either with its disk (`ColdDurable`) or with nothing
//! (`ColdAmnesia`). Durable restarts must re-derive subscription, cache and
//! delivery log from stable storage; amnesiac restarts must rejoin empty,
//! re-subscribe from configuration, and let snapshot repair plus
//! anti-entropy reconciliation backfill everything.

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{Deployment, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::{NodeId, RestartMode, SimTime};

fn tech_item(seq: u64) -> NewsItem {
    NewsItem::builder(PublisherId(0), seq)
        .headline(format!("story {seq}")) // distinct slugs: no revision fusion
        .category(Category::Technology)
        .body_len(700)
        .build()
}

/// A small durable-state deployment with `n` subscribers, converged and
/// with `items` published by t=110.
fn durable_deployment(n: u32, seed: u64) -> (Deployment, Vec<NewsItem>) {
    let mut config = NewsWireConfig::tech_news();
    config.durable_state = true;
    let mut d = DeploymentBuilder::new(n, seed)
        .branching(4)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .cats_per_subscriber(2)
        .build();
    d.settle(90);
    let items: Vec<NewsItem> = (0..6u64).map(tech_item).collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + 2 * i as u64), item.clone());
    }
    d.settle(40); // t = 130: everything delivered, state snapshots synced
    (d, items)
}

fn victim_of(d: &Deployment, items: &[NewsItem]) -> NodeId {
    *d.interested_nodes(&items[0]).first().expect("someone subscribes to Technology")
}

#[test]
fn cold_durable_restart_recovers_state_from_disk() {
    let (mut d, items) = durable_deployment(16, 0xD15C);
    let victim = victim_of(&d, &items);
    let crash = SimTime::from_secs(135);
    d.sim.schedule_crash(crash, victim);
    d.sim.schedule_restart(SimTime::from_secs(145), victim, RestartMode::ColdDurable);
    d.settle(60); // t = 190
    let node = d.sim.node(victim);
    assert_eq!(node.stats.cold_restarts, 1);
    assert!(node.agent.incarnation() > 0, "cold restart burned an incarnation");
    // The delivery log came back from disk, original timestamps intact —
    // these deliveries predate the crash, so they cannot be re-deliveries.
    for item in &items {
        if d.interested_nodes(item).contains(&victim) {
            assert!(node.has_item(item.id), "restored delivery log covers {:?}", item.id);
        }
    }
    assert!(
        node.deliveries.iter().any(|r| r.delivered < crash),
        "restored records keep their pre-crash delivery times"
    );
    // The disk still holds the synced records the restart was fed from.
    let disk = d.sim.disk(victim);
    assert!(disk.read("incar").is_some());
    assert!(disk.read("sub").is_some());
    assert!(disk.total_writes() > 0);
    assert!(
        node.stats.recoveries_completed >= 1,
        "durable recovery reached the caught-up criterion"
    );
}

#[test]
fn cold_amnesia_restart_rejoins_empty_and_backfills() {
    let (mut d, items) = durable_deployment(16, 0xA11E);
    let victim = victim_of(&d, &items);
    let restart = SimTime::from_secs(145);
    d.sim.schedule_crash(SimTime::from_secs(135), victim);
    d.sim.schedule_restart(restart, victim, RestartMode::ColdAmnesia);
    d.settle(150); // t = 280: give snapshot repair + reconciliation time
    let node = d.sim.node(victim);
    assert_eq!(node.stats.cold_restarts, 1);
    assert!(node.agent.incarnation() > 0);
    // Everything was re-acquired from peers: every delivery the node holds
    // postdates the restart (the pre-crash log is unrecoverable).
    assert!(!node.deliveries.is_empty(), "backfill re-delivered the stories");
    assert!(
        node.deliveries.iter().all(|r| r.delivered >= restart),
        "an amnesiac node cannot hold pre-crash delivery records"
    );
    for item in &items {
        if d.interested_nodes(item).contains(&victim) {
            assert!(node.has_item(item.id), "backfill must cover {:?}", item.id);
        }
    }
    assert!(node.stats.recovery_backfill_items > 0, "backfill went through the repair paths");
    // Peers saw the new incarnation ride in on gossip and fenced the old
    // life (telemetry-gated: the counter lives in the obs registry).
    if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        assert!(hub.counter_total(obs::ctr::INCARNATION_BUMPS) > 0, "peers observed the bump");
    }
}

#[test]
fn freeze_restart_burns_no_incarnation() {
    let (mut d, items) = durable_deployment(12, 0xF0F0);
    let victim = victim_of(&d, &items);
    d.sim.schedule_crash(SimTime::from_secs(135), victim);
    d.sim.schedule_restart(SimTime::from_secs(145), victim, RestartMode::Freeze);
    d.settle(60);
    let node = d.sim.node(victim);
    assert_eq!(node.agent.incarnation(), 0, "freeze is the legacy ambient-memory model");
    assert_eq!(node.stats.cold_restarts, 0);
}
