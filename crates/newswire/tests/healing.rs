//! Partition-healing oracle tests: a deterministic two-zone-group split
//! with items published before, during, and after the partition window.
//!
//! With log anti-entropy enabled, every continuously-live interested node
//! must end converged — the items published while the network was split
//! are pulled back through gossip-piggybacked digest reconciliation, even
//! though the margin-backed repair path can no longer see them (post-heal
//! publishing pushes every high-water mark far past the hole).
//!
//! With anti-entropy disabled (the ablation arm, same seed, same fault
//! schedule), the oracle must *detect* the damage: unconverged logs and
//! missed deliveries confined to the partition window.

use std::collections::BTreeSet;

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{check_invariants, DeploymentBuilder, NewsWireConfig, OracleReport, PublisherSpec};
use simnet::{FaultPlan, Partition, PartitionSpec, SimTime};

/// Total nodes: one publisher + 47 subscribers; branching 8 puts the split
/// at a zone boundary (zones 0–2 with the publisher vs zones 3–5).
const N_SUB: u32 = 47;
const N_TOTAL: usize = 48;
const SPLIT: usize = 24;

/// Sequence ranges published before / during / after the partition.
const PRE: std::ops::Range<u64> = 0..5;
const DURING: std::ops::Range<u64> = 5..35;
const AFTER: std::ops::Range<u64> = 35..55;

fn item(seq: u64) -> NewsItem {
    NewsItem::builder(PublisherId(0), seq)
        .headline(format!("heal {seq}")) // distinct slugs: no revision fusion
        .category(Category::Technology)
        .build()
}

fn plan() -> FaultPlan {
    FaultPlan {
        partitions: vec![PartitionSpec {
            partition: Partition::split_at(N_TOTAL, SPLIT),
            start: SimTime::from_secs(80),
            heal: SimTime::from_secs(140),
        }],
        ..FaultPlan::default()
    }
}

/// Runs the scenario and returns the oracle report plus the items. The
/// post-heal publishing keeps going long enough that every node's cache
/// high-water mark jumps ~20 items past the partition hole — deeper than
/// the repair path's margin (`repair_batch / 4 = 16`), so only log
/// reconciliation can close it.
fn run(anti_entropy: bool, seed: u64) -> (OracleReport, Vec<NewsItem>, newswire::NodeStats) {
    let config = NewsWireConfig { anti_entropy, ..NewsWireConfig::tech_news() };
    let mut d = DeploymentBuilder::new(N_SUB, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(60);
    d.sim.apply_fault_plan(&plan());

    let items: Vec<NewsItem> = (0..AFTER.end).map(item).collect();
    for seq in PRE {
        d.publish(SimTime::from_secs(62 + 2 * seq), items[seq as usize].clone());
    }
    for (k, seq) in DURING.enumerate() {
        d.publish(SimTime::from_secs(81 + 2 * k as u64), items[seq as usize].clone());
    }
    for (k, seq) in AFTER.enumerate() {
        d.publish(SimTime::from_secs(142 + 2 * k as u64), items[seq as usize].clone());
    }
    d.settle(240); // runs to t=300: plenty of gossip/reconcile rounds

    let f = d.sim.fault_counters();
    assert_eq!(f.partitions_started, 1);
    assert_eq!(f.partitions_healed, 1);

    let report = check_invariants(&d, &items, &BTreeSet::new());
    (report, items, d.total_stats())
}

#[test]
fn anti_entropy_heals_the_partition() {
    let (report, _, stats) = run(true, 21);
    assert!(report.survivor_expected > 0, "vacuous run");
    assert!(report.holds(), "{report}");
    assert!(report.converged(), "{report}");
    assert!(
        stats.reconcile_items_recv > 0,
        "recovery must have flowed through reconciliation, not luck"
    );
}

#[test]
fn without_anti_entropy_the_damage_is_detected() {
    let (on, _, _) = run(true, 21);
    let (off, _, off_stats) = run(false, 21);
    assert_eq!(off_stats.reconcile_requests, 0, "ablation arm must not reconcile");
    assert!(!off.converged(), "partition holes must show up as unconverged logs");
    assert!(!off.missed_deliveries.is_empty(), "side-B survivors miss partition items");
    assert!(
        off.survivor_delivered < on.survivor_delivered,
        "anti-entropy off must recover strictly less ({} vs {})",
        off.survivor_delivered,
        on.survivor_delivered
    );
    // Every missed delivery is an item from the partition window — the
    // multicast tree handled everything published while the net was whole.
    for v in &off.missed_deliveries {
        assert!(
            DURING.contains(&v.item.seq),
            "missed item {} outside the partition window",
            v.item
        );
    }
}
