//! Self-stabilization oracle tests: a corruption window scrambles one
//! node's zone-table replicas and its own subscription advertisement
//! mid-run, and with defenses on the system must pass `self_stabilized`
//! within a small round budget — *and* the repaired node's leaf-zone state
//! must end byte-identical (attribute-for-attribute) to the same node in
//! an uncorrupted run of the same seed. The repair leaves no scar.

use std::collections::BTreeSet;

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{self_stabilized, Deployment, DeploymentBuilder, PublisherSpec};
use simnet::{CorruptionOp, CorruptionSpec, FaultPlan, NodeId, SimTime};

const N_SUB: u32 = 23;
const VICTIM: NodeId = NodeId(5);

fn item(seq: u64) -> NewsItem {
    NewsItem::builder(PublisherId(0), seq)
        .headline(format!("stab {seq}")) // distinct slugs: no revision fusion
        .category(Category::Technology)
        .build()
}

/// Settle, publish, optionally corrupt one node through a 20 s window,
/// then ride past the window's close.
fn run(seed: u64, corrupt: bool) -> (Deployment, Vec<NewsItem>) {
    let mut d = DeploymentBuilder::new(N_SUB, seed)
        .branching(4)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(60);
    if corrupt {
        d.sim.apply_fault_plan(&FaultPlan {
            salt: 0x57AB,
            corruption: vec![CorruptionSpec {
                nodes: vec![VICTIM],
                start: SimTime::from_secs(65),
                end: SimTime::from_secs(85),
                mean_interval_secs: 4.0,
                op: CorruptionOp::ZoneRows { rows: 3 },
            }],
            ..FaultPlan::default()
        });
    }
    let items: Vec<NewsItem> = (0..4u64).map(item).collect();
    for (k, it) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(66 + 4 * k as u64), it.clone());
    }
    d.settle(40); // to t=100, past the corruption window
    (d, items)
}

#[test]
fn corrupted_run_self_stabilizes_and_repairs_without_a_scar() {
    let seed = 0xBAD5EED;
    let (mut dirty, items) = run(seed, true);
    let (mut clean, _) = run(seed, false);

    let struck = dirty.sim.fault_counters().state_corruptions;
    assert!(struck > 0, "the corruption window must actually strike");

    let exempt = BTreeSet::new();
    let verdict = self_stabilized(&mut dirty, &items, &exempt, 15);
    assert!(
        verdict.stabilized,
        "defenses-on run must restore all invariants within budget:\n{}",
        verdict.report
    );

    // Give the clean run the same wall-clock tail so both tables are
    // compared at quiescence, then hold the victim's leaf-zone state to
    // byte-identity: same labels, and every row attribute-for-attribute
    // equal (stamps are timing artifacts and excluded; `same_attrs`
    // compares the full sorted attribute list).
    let rounds = u64::from(verdict.rounds_used.max(1));
    let tail = clean.config.astrolabe.gossip_interval * rounds;
    let deadline = clean.sim.now() + tail;
    clean.sim.run_until(deadline);

    let repaired = dirty.sim.node(VICTIM);
    let pristine = clean.sim.node(VICTIM);
    let (rt, pt) = (repaired.agent.table(0), pristine.agent.table(0));
    let labels = |t: &astrolabe::ZoneTable| t.iter().map(|(l, _)| l).collect::<Vec<_>>();
    assert_eq!(labels(rt), labels(pt), "leaf-zone membership diverged after repair");
    for ((label, r), (_, p)) in rt.iter().zip(pt.iter()) {
        assert!(
            r.same_attrs(p),
            "leaf row {label} differs after repair:\n  repaired: {r:?}\n  pristine: {p:?}"
        );
    }

    if obs::ENABLED {
        let hub = dirty.sim.telemetry();
        let hub = hub.borrow();
        assert!(
            hub.counter_total(obs::ctr::SELF_AUDIT_REPAIRS) > 0,
            "the self-audit must have repaired something"
        );
        assert_eq!(
            hub.global().ctr(obs::ctr::ORACLE_STABILIZATION_RUNS),
            1,
            "the stabilization verdict is recorded once"
        );
    }
}

/// The control: an uncorrupted run is already stabilized — the oracle
/// returns immediately with zero rounds used, and the sweep itself never
/// perturbs converged state.
#[test]
fn clean_run_stabilizes_in_zero_rounds() {
    let (mut d, items) = run(0xC1EA4, false);
    let verdict = self_stabilized(&mut d, &items, &BTreeSet::new(), 15);
    assert!(verdict.stabilized);
    assert_eq!(verdict.rounds_used, 0, "nothing to repair, nothing to wait for");
}
