//! Trust-root rotation end to end: a stolen publisher key signs forgeries
//! that honest nodes verify and admit; the registry then revokes the key,
//! the rotation record propagates epidemically, every admission path
//! fences, caches are retroactively purged, and the fleet's servable state
//! converges to byte-equality with a same-seed run that was never
//! compromised at all.

use std::collections::{BTreeMap, BTreeSet};

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{check_invariants, Deployment, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::{FaultPlan, KeyCompromiseSpec, NodeId, SimTime};

/// Subscriber count; the deployment adds one publisher at node 0.
const N: u32 = 48;

fn build(seed: u64) -> Deployment {
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    config.admission = true;
    DeploymentBuilder::new(N, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build()
}

fn compromise_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        salt: seed,
        churn: vec![],
        gray: vec![],
        link_cuts: vec![],
        partitions: vec![],
        message_chaos: vec![],
        corruption: vec![],
        liars: vec![],
        collusion: vec![],
        forgery: vec![],
        key_compromise: vec![KeyCompromiseSpec {
            nodes: vec![NodeId(5), NodeId(23)],
            start: SimTime::from_secs(104),
            end: SimTime::from_secs(118),
            mean_interval_secs: 3.0,
            items_per_strike: 2,
            attest_bump: 1,
            publisher: 0,
        }],
        sybil: vec![],
    }
}

/// One full day: publish under the original key, optionally suffer a
/// stolen-key window, rotate at t=120, publish again under the successor
/// key, stabilize. Returns each node's servable-state snapshot.
fn run(seed: u64, compromised: bool) -> BTreeMap<u32, Vec<(newsml::ItemId, u64, u64)>> {
    let mut d = build(seed);
    d.settle(90);

    let pre: Vec<NewsItem> = (0..8u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("pre-rotation {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in pre.iter().enumerate() {
        d.publish(SimTime::from_secs(92 + i as u64), item.clone());
    }

    if compromised {
        d.sim.apply_fault_plan(&compromise_plan(seed));
    }

    d.schedule_rotation(SimTime::from_secs(120), PublisherId(0), 3);

    let post: Vec<NewsItem> = (8..12u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("post-rotation {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in post.iter().enumerate() {
        d.publish(SimTime::from_secs(150 + i as u64), item.clone());
    }
    d.settle(200);

    for (id, node) in d.sim.iter() {
        assert!(
            node.rotation_adopted_at.is_some(),
            "seed {seed}: node {id} never adopted the rotation"
        );
    }
    if compromised {
        let counters = d.sim.fault_counters();
        assert!(counters.key_compromise_strikes > 0, "seed {seed}: stolen key never struck");
        let total = d.total_stats();
        assert!(total.retro_purged > 0, "seed {seed}: nothing was retroactively purged");
    }

    // Every item — pre- and post-rotation — must still have reached every
    // interested survivor: the revocation outlaws the *key*, not the
    // history delivered under it, and the successor key must be live.
    let mut all = pre.clone();
    all.extend(post.iter().cloned());
    let exempt: BTreeSet<NodeId> =
        if compromised { compromise_plan(seed).compromised_nodes() } else { BTreeSet::new() };
    let report = check_invariants(&d, &all, &exempt);
    assert!(report.survivor_expected > 0, "seed {seed}: vacuous oracle run");
    assert!(
        report.no_post_revocation_delivery(),
        "seed {seed}: post-revocation forged delivery: {report}"
    );
    assert!(report.holds(), "seed {seed}: {report}");
    if compromised {
        assert!(
            d.compromise_exposure_window().is_some(),
            "seed {seed}: exposure window not measured"
        );
    }

    d.sim.iter().map(|(id, node)| (id.0, node.served_articles())).collect()
}

/// The tentpole equivalence: after revocation, purge, and stabilization,
/// the servable article state of a compromised run is byte-equal to the
/// same-seed run in which the key was never stolen — every trace of the
/// adversary's influence on what nodes serve onward has been scrubbed.
#[test]
fn post_revocation_state_matches_never_compromised_run() {
    let seed = 11;
    let attacked = run(seed, true);
    let clean = run(seed, false);
    assert_eq!(attacked.len(), clean.len(), "node sets differ");
    for (node, served) in &attacked {
        assert_eq!(
            served,
            clean.get(node).expect("node missing from clean run"),
            "node {node}: servable state diverges from the never-compromised run"
        );
    }
}

/// Post-rotation servable state holds exactly the successor-key stream:
/// everything signed by the revoked key — forged or genuine — has been
/// retroactively purged fleet-wide.
#[test]
fn retroactive_purge_scrubs_revoked_key_everywhere() {
    let served = run(7, true);
    for (node, articles) in &served {
        for (id, _, _) in articles {
            assert!(
                id.publisher == PublisherId(0) && (8..12).contains(&id.seq),
                "node {node}: still serving {id:?}, which predates the rotation"
            );
        }
        assert!(!articles.is_empty(), "node {node}: successor-key stream never arrived");
    }
}
