//! NITF-style XML encoding of news items.
//!
//! The paper's prototype "uses the simpler NITF format" (§7). This module
//! maps [`NewsItem`] to and from a faithful-but-minimal NITF document shape:
//!
//! ```text
//! <nitf>
//!   <head>
//!     <docdata>
//!       <doc-id regsrc="p1" id-string="p1:42"/>
//!       <urgency ed-urg="3"/>
//!       <date.issue norm="123456"/>
//!       <du-key key="astrolabe-ships" version="0"/>
//!       <identified-content>
//!         <classifier type="category" value="technology"/>
//!         <classifier type="subject" value="04.003"/>
//!       </identified-content>
//!     </docdata>
//!   </head>
//!   <body>
//!     <hedline><hl1>Astrolabe Ships</hl1></hedline>
//!     <body.content bytes="1000"/>
//!   </body>
//! </nitf>
//! ```

use std::fmt;

use crate::item::{ItemId, NewsItem, PublisherId, Urgency};
use crate::subject::{Category, Subject};
use crate::xml::{parse, Element, ParseXmlError};

/// Failure decoding a NITF document back into a [`NewsItem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNitfError {
    /// The underlying XML was malformed.
    Xml(ParseXmlError),
    /// The XML was well-formed but not a valid NITF item.
    Shape(String),
}

impl fmt::Display for ParseNitfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNitfError::Xml(e) => write!(f, "invalid nitf xml: {e}"),
            ParseNitfError::Shape(m) => write!(f, "invalid nitf document: {m}"),
        }
    }
}

impl std::error::Error for ParseNitfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseNitfError::Xml(e) => Some(e),
            ParseNitfError::Shape(_) => None,
        }
    }
}

impl From<ParseXmlError> for ParseNitfError {
    fn from(e: ParseXmlError) -> Self {
        ParseNitfError::Xml(e)
    }
}

fn shape(msg: impl Into<String>) -> ParseNitfError {
    ParseNitfError::Shape(msg.into())
}

/// Encodes a news item as a NITF document tree.
pub fn to_nitf(item: &NewsItem) -> Element {
    let mut content = Element::new("identified-content");
    for c in &item.categories {
        content = content.with_child(
            Element::new("classifier").with_attr("type", "category").with_attr("value", c.name()),
        );
    }
    for s in &item.subjects {
        content = content.with_child(
            Element::new("classifier").with_attr("type", "subject").with_attr("value", s.key()),
        );
    }
    for (k, v) in &item.meta {
        content = content.with_child(
            Element::new("meta").with_attr("name", k.clone()).with_attr("content", v.clone()),
        );
    }

    let mut docdata = Element::new("docdata")
        .with_child(
            Element::new("doc-id")
                .with_attr("regsrc", item.id.publisher.to_string())
                .with_attr("id-string", item.id.to_string()),
        )
        .with_child(Element::new("urgency").with_attr("ed-urg", item.urgency.to_string()))
        .with_child(Element::new("date.issue").with_attr("norm", item.issued_us.to_string()))
        .with_child(
            Element::new("du-key")
                .with_attr("key", item.slug.clone())
                .with_attr("version", item.revision.to_string()),
        );
    if let Some(sup) = item.supersedes {
        docdata = docdata
            .with_child(Element::new("ed-msg").with_attr("info", format!("supersedes {sup}")));
    }
    docdata = docdata.with_child(content);

    Element::new("nitf").with_child(Element::new("head").with_child(docdata)).with_child(
        Element::new("body")
            .with_child(
                Element::new("hedline")
                    .with_child(Element::new("hl1").with_text(item.headline.clone())),
            )
            .with_child(Element::new("body.content").with_attr("bytes", item.body_len.to_string())),
    )
}

/// Encodes a news item as a NITF XML string.
pub fn to_nitf_xml(item: &NewsItem) -> String {
    to_nitf(item).to_xml()
}

fn parse_item_id(s: &str) -> Result<ItemId, ParseNitfError> {
    let rest = s.strip_prefix('p').ok_or_else(|| shape(format!("bad item id `{s}`")))?;
    let (publ, seq) = rest.split_once(':').ok_or_else(|| shape(format!("bad item id `{s}`")))?;
    Ok(ItemId::new(
        PublisherId(publ.parse().map_err(|_| shape(format!("bad publisher in `{s}`")))?),
        seq.parse().map_err(|_| shape(format!("bad sequence in `{s}`")))?,
    ))
}

/// Decodes a NITF document tree into a [`NewsItem`].
///
/// # Errors
///
/// Returns [`ParseNitfError::Shape`] when required structure is missing.
pub fn from_nitf(root: &Element) -> Result<NewsItem, ParseNitfError> {
    if root.name != "nitf" {
        return Err(shape(format!("root element is <{}>, expected <nitf>", root.name)));
    }
    let docdata = root
        .child("head")
        .and_then(|h| h.child("docdata"))
        .ok_or_else(|| shape("missing <head>/<docdata>"))?;
    let doc_id = docdata.child("doc-id").ok_or_else(|| shape("missing <doc-id>"))?;
    let id = parse_item_id(doc_id.attr("id-string").ok_or_else(|| shape("missing id-string"))?)?;

    let urgency = match docdata.child("urgency").and_then(|u| u.attr("ed-urg")) {
        Some(v) => {
            let lvl: u8 = v.parse().map_err(|_| shape("bad urgency"))?;
            if !(1..=8).contains(&lvl) {
                return Err(shape("urgency out of range"));
            }
            Urgency::new(lvl)
        }
        None => Urgency::default(),
    };

    let issued_us = docdata
        .child("date.issue")
        .and_then(|d| d.attr("norm"))
        .map(|v| v.parse::<u64>().map_err(|_| shape("bad issue date")))
        .transpose()?
        .unwrap_or(0);

    let (slug, revision) = match docdata.child("du-key") {
        Some(k) => (
            k.attr("key").unwrap_or("").to_owned(),
            k.attr("version")
                .map(|v| v.parse::<u32>().map_err(|_| shape("bad revision")))
                .transpose()?
                .unwrap_or(0),
        ),
        None => (String::new(), 0),
    };

    let supersedes = docdata
        .child("ed-msg")
        .and_then(|m| m.attr("info"))
        .and_then(|i| i.strip_prefix("supersedes "))
        .map(parse_item_id)
        .transpose()?;

    let mut categories = Vec::new();
    let mut subjects = Vec::new();
    let mut meta = Vec::new();
    if let Some(content) = docdata.child("identified-content") {
        for cl in content.children_named("classifier") {
            let value = cl.attr("value").ok_or_else(|| shape("classifier missing value"))?;
            match cl.attr("type") {
                Some("category") => {
                    categories.push(value.parse::<Category>().map_err(|e| shape(e.to_string()))?)
                }
                Some("subject") => {
                    subjects.push(value.parse::<Subject>().map_err(|e| shape(e.to_string()))?)
                }
                other => return Err(shape(format!("unknown classifier type {other:?}"))),
            }
        }
        for m in content.children_named("meta") {
            meta.push((
                m.attr("name").ok_or_else(|| shape("meta missing name"))?.to_owned(),
                m.attr("content").unwrap_or("").to_owned(),
            ));
        }
    }

    let body = root.child("body").ok_or_else(|| shape("missing <body>"))?;
    let headline =
        body.child("hedline").and_then(|h| h.child("hl1")).map(|h| h.text()).unwrap_or_default();
    let body_len = body
        .child("body.content")
        .and_then(|b| b.attr("bytes"))
        .map(|v| v.parse::<u32>().map_err(|_| shape("bad body length")))
        .transpose()?
        .unwrap_or(0);

    let mut builder = NewsItem::builder(id.publisher, id.seq)
        .headline(headline)
        .slug(slug)
        .urgency(urgency)
        .revision(revision, supersedes)
        .issued_us(issued_us)
        .body_len(body_len);
    for c in categories {
        builder = builder.category(c);
    }
    for s in subjects {
        builder = builder.subject(s);
    }
    for (k, v) in meta {
        builder = builder.meta(k, v);
    }
    Ok(builder.build())
}

/// Decodes a NITF XML string into a [`NewsItem`].
///
/// # Errors
///
/// Returns [`ParseNitfError`] for malformed XML or missing NITF structure.
pub fn from_nitf_xml(xml: &str) -> Result<NewsItem, ParseNitfError> {
    from_nitf(&parse(xml)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NewsItem {
        NewsItem::builder(PublisherId(7), 123)
            .headline("Gossip protocols & the <future>")
            .category(Category::Technology)
            .subject("04.003.005".parse().unwrap())
            .urgency(Urgency::new(2))
            .issued_us(99_000_000)
            .body_len(2048)
            .meta("region", "eu")
            .revision(1, Some(ItemId::new(PublisherId(7), 100)))
            .build()
    }

    #[test]
    fn roundtrip_preserves_item() {
        let item = sample();
        let xml = to_nitf_xml(&item);
        let back = from_nitf_xml(&xml).unwrap();
        assert_eq!(back, item);
    }

    #[test]
    fn roundtrip_minimal_item() {
        let item = NewsItem::builder(PublisherId(0), 0).headline("x").build();
        assert_eq!(from_nitf_xml(&to_nitf_xml(&item)).unwrap(), item);
    }

    #[test]
    fn xml_escaping_survives() {
        let xml = to_nitf_xml(&sample());
        assert!(xml.contains("&amp;"));
        assert!(xml.contains("&lt;future&gt;"));
    }

    #[test]
    fn rejects_wrong_root() {
        let err = from_nitf_xml("<rss/>").unwrap_err();
        assert!(err.to_string().contains("expected <nitf>"));
    }

    #[test]
    fn rejects_missing_docdata() {
        let err = from_nitf_xml("<nitf><body/></nitf>").unwrap_err();
        assert!(err.to_string().contains("docdata"));
    }

    #[test]
    fn rejects_bad_urgency() {
        let xml = to_nitf_xml(&sample()).replace("ed-urg=\"2\"", "ed-urg=\"11\"");
        assert!(from_nitf_xml(&xml).is_err());
    }

    #[test]
    fn error_chain_exposes_xml_cause() {
        let err = from_nitf_xml("<nitf>").unwrap_err();
        assert!(std::error::Error::source(&err).is_some());
    }
}
