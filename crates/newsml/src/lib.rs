//! # newsml — news formats and workloads
//!
//! The news-industry substrate of the NewsWire reproduction. Paper §7: "The
//! news articles are published in the ICE, NITF and NewsML formats, which
//! are all XML standards" — metadata from these formats is what
//! subscriptions are constructed from. This crate provides:
//!
//! * [`mod@xml`] — a hand-written XML subset parser/serializer (no external
//!   dependencies), sufficient for NITF-shaped documents.
//! * [`NewsItem`] / [`ItemId`] / [`NewsItemBuilder`] — the item model with
//!   publisher-assigned unique ids (duplicate suppression, §9), revision
//!   history (cache fusion, §9) and free-form metadata (SQL subscription
//!   predicates, §8).
//! * [`Category`] and [`Subject`] — the two subscription granularities of
//!   §7: coarse per-publisher category bits and hierarchical IPTC-style
//!   subject codes.
//! * [`to_nitf_xml`] / [`from_nitf_xml`] — the NITF encoding; [`to_newsml_xml`] / [`from_newsml_xml`] — the richer NewsML encoding.
//! * [`TraceGenerator`] / [`PublisherProfile`] / [`Zipf`] — deterministic
//!   synthetic workloads calibrated to the sources the paper names
//!   (Slashdot-like community sites, Reuters-like wire services).
//!
//! ```
//! use newsml::{NewsItem, PublisherId, Category, to_nitf_xml, from_nitf_xml};
//!
//! let item = NewsItem::builder(PublisherId(1), 7)
//!     .headline("Epidemic dissemination works")
//!     .category(Category::Technology)
//!     .build();
//! let xml = to_nitf_xml(&item);
//! assert_eq!(from_nitf_xml(&xml)?, item);
//! # Ok::<(), newsml::ParseNitfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdc;
mod gen;
mod item;
mod newsml_fmt;
mod nitf;
mod subject;
pub mod xml;

pub use gen::{sample_interests, PublishEvent, PublisherProfile, TraceGenerator, Zipf};
pub use item::{ItemId, NewsItem, NewsItemBuilder, PublisherId, Urgency};
pub use newsml_fmt::{from_newsml, from_newsml_xml, to_newsml, to_newsml_xml, ParseNewsmlError};
pub use nitf::{from_nitf, from_nitf_xml, to_nitf, to_nitf_xml, ParseNitfError};
pub use subject::{Category, ParseCategoryError, ParseSubjectError, Subject};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_subject() -> impl Strategy<Value = Subject> {
        proptest::collection::vec(0u16..999, 1..4).prop_map(Subject::new)
    }

    fn arb_item() -> impl Strategy<Value = NewsItem> {
        (
            0u16..100,
            0u64..10_000,
            "[ -~]{0,40}",
            proptest::collection::vec(0u8..12, 0..4),
            proptest::collection::vec(arb_subject(), 0..3),
            1u8..=8,
            0u32..100_000,
            proptest::collection::vec(("[a-z]{1,8}", "[ -~]{0,16}"), 0..3),
        )
            .prop_map(|(p, seq, headline, cats, subs, urg, len, meta)| {
                let mut b = NewsItem::builder(PublisherId(p), seq)
                    .headline(headline)
                    .urgency(Urgency::new(urg))
                    .body_len(len);
                for c in cats {
                    b = b.category(Category::from_bit(c).unwrap());
                }
                for s in subs {
                    b = b.subject(s);
                }
                for (k, v) in meta {
                    b = b.meta(k, v);
                }
                b.build()
            })
    }

    proptest! {
        /// Any item survives NITF encode/decode unchanged.
        #[test]
        fn nitf_roundtrip(item in arb_item()) {
            let xml = to_nitf_xml(&item);
            prop_assert_eq!(from_nitf_xml(&xml).unwrap(), item);
        }

        /// Any item survives NewsML encode/decode unchanged.
        #[test]
        fn newsml_roundtrip(item in arb_item()) {
            let xml = to_newsml_xml(&item);
            prop_assert_eq!(from_newsml_xml(&xml).unwrap(), item);
        }

        /// The XML serializer's output always reparses to the same tree.
        #[test]
        fn xml_roundtrip_arbitrary_text(t in "[ -~]{0,60}", attr in "[ -~]{0,30}") {
            let e = xml::Element::new("t").with_attr("a", attr).with_text(t);
            prop_assert_eq!(xml::parse(&e.to_xml()).unwrap(), e);
        }

        /// The XML parser never panics on arbitrary input.
        #[test]
        fn xml_parser_total(input in "[ -~<>&;\"']{0,120}") {
            let _ = xml::parse(&input);
        }

        /// Subject parse/display round-trips.
        #[test]
        fn subject_roundtrip(s in arb_subject()) {
            let text = s.to_string();
            prop_assert_eq!(text.parse::<Subject>().unwrap(), s);
        }

        /// Subscription keys are deterministic and duplicate-free.
        #[test]
        fn subscription_keys_unique(item in arb_item()) {
            let keys = item.subscription_keys();
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), keys.len());
        }
    }
}
