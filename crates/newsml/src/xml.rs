//! A minimal XML subset: the slice of XML that NITF/NewsML documents in this
//! reproduction use.
//!
//! Supported: elements with attributes, text content, self-closing tags,
//! comments, processing instructions/XML declarations (skipped), and the five
//! predefined entities. Not supported (not needed by the news formats here):
//! DOCTYPE internal subsets, CDATA, namespaces-as-semantics (prefixes are
//! kept as part of the name).

use std::fmt;

/// A parsed element: name, attributes in document order, children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name (including any namespace prefix, verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

/// A node in the parsed tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A nested element.
    Element(Element),
    /// A run of character data (entity-decoded, whitespace preserved).
    Text(String),
}

/// Position-annotated parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseXmlError {}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: adds an attribute.
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder-style: appends a child element.
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Builder-style: appends a text child. Empty text is skipped — it has
    /// no XML representation, so keeping it would break parse/serialize
    /// round-trips.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        let text = text.into();
        if !text.is_empty() {
            self.children.push(XmlNode::Text(text));
        }
        self
    }

    /// Value of the first attribute named `name`.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First child element named `name`.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find_map(|n| match n {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements named `name`, in order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter_map(move |n| match n {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements regardless of name.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Concatenated text of the direct text children.
    pub fn text(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let XmlNode::Text(t) = n {
                s.push_str(t);
            }
        }
        s
    }

    /// Serializes to a compact XML string.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        write_element(self, &mut out);
        out
    }
}

fn escape_into(s: &str, out: &mut String, in_attr: bool) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attr => out.push_str("&quot;"),
            '\'' if in_attr => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

fn write_element(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_into(v, out, true);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            XmlNode::Element(e) => write_element(e, out),
            XmlNode::Text(t) => escape_into(t, out, false),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Parses a document and returns its root element.
///
/// Leading/trailing whitespace, an XML declaration, comments and processing
/// instructions around the root are accepted and skipped.
///
/// # Errors
///
/// Returns [`ParseXmlError`] on malformed input: unbalanced tags, bad entity
/// references, garbage after the root element, etc.
pub fn parse(input: &str) -> Result<Element, ParseXmlError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_misc();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseXmlError {
        ParseXmlError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find_from(self.bytes, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match find_from(self.bytes, self.pos + 2, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_entity(&mut self) -> Result<char, ParseXmlError> {
        // self.pos points at '&'
        let semi =
            find_from(self.bytes, self.pos, b";").ok_or_else(|| self.err("unterminated entity"))?;
        let ent = &self.bytes[self.pos + 1..semi];
        let c = match ent {
            b"lt" => '<',
            b"gt" => '>',
            b"amp" => '&',
            b"quot" => '"',
            b"apos" => '\'',
            _ if ent.first() == Some(&b'#') => {
                let num = &ent[1..];
                let code = if num.first() == Some(&b'x') || num.first() == Some(&b'X') {
                    u32::from_str_radix(&String::from_utf8_lossy(&num[1..]), 16)
                } else {
                    String::from_utf8_lossy(num).parse::<u32>()
                }
                .map_err(|_| self.err("bad numeric entity"))?;
                char::from_u32(code).ok_or_else(|| self.err("invalid character entity"))?
            }
            _ => return Err(self.err(format!("unknown entity &{};", String::from_utf8_lossy(ent)))),
        };
        self.pos = semi + 1;
        Ok(c)
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseXmlError> {
        let quote = self.peek().ok_or_else(|| self.err("expected attribute value"))?;
        if quote != b'"' && quote != b'\'' {
            return Err(self.err("attribute value must be quoted"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(c) => {
                    // Copy the full UTF-8 sequence starting at `c`.
                    let ch_len = utf8_len(c);
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + ch_len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn parse_element(&mut self) -> Result<Element, ParseXmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut el = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el);
                }
                Some(_) => {
                    let an = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let av = self.parse_attr_value()?;
                    el.attrs.push((an, av));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated element <{}>", el.name))),
                Some(b'<') => {
                    if !text.is_empty() {
                        el.children.push(XmlNode::Text(std::mem::take(&mut text)));
                    }
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != el.name {
                            return Err(self.err(format!(
                                "mismatched close tag: expected </{}>, got </{close}>",
                                el.name
                            )));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected '>' in close tag"));
                        }
                        self.pos += 1;
                        return Ok(el);
                    } else if self.starts_with("<!--") {
                        match find_from(self.bytes, self.pos + 4, b"-->") {
                            Some(end) => self.pos = end + 3,
                            None => return Err(self.err("unterminated comment")),
                        }
                    } else if self.starts_with("<?") {
                        match find_from(self.bytes, self.pos + 2, b"?>") {
                            Some(end) => self.pos = end + 2,
                            None => return Err(self.err("unterminated processing instruction")),
                        }
                    } else {
                        el.children.push(XmlNode::Element(self.parse_element()?));
                    }
                }
                Some(b'&') => text.push(self.parse_entity()?),
                Some(c) => {
                    let ch_len = utf8_len(c);
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + ch_len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    text.push_str(s);
                    self.pos += ch_len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn find_from(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > hay.len() {
        return None;
    }
    hay[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
    }

    #[test]
    fn parse_attrs_and_text() {
        let e = parse(r#"<hl1 id="h1" class='big'>Hello &amp; welcome</hl1>"#).unwrap();
        assert_eq!(e.attr("id"), Some("h1"));
        assert_eq!(e.attr("class"), Some("big"));
        assert_eq!(e.text(), "Hello & welcome");
    }

    #[test]
    fn parse_nested() {
        let e = parse("<nitf><head><title>T</title></head><body>B</body></nitf>").unwrap();
        assert_eq!(e.child("head").unwrap().child("title").unwrap().text(), "T");
        assert_eq!(e.child("body").unwrap().text(), "B");
        assert_eq!(e.elements().count(), 2);
    }

    #[test]
    fn parse_declaration_and_comments() {
        let src = "<?xml version=\"1.0\"?><!-- hi --><r><!-- inner -->x</r><!-- bye -->";
        let e = parse(src).unwrap();
        assert_eq!(e.name, "r");
        assert_eq!(e.text(), "x");
    }

    #[test]
    fn numeric_entities() {
        let e = parse("<t>&#65;&#x42;</t>").unwrap();
        assert_eq!(e.text(), "AB");
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn trailing_garbage_error() {
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn unknown_entity_error() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"));
    }

    #[test]
    fn serialize_escapes() {
        let e = Element::new("t").with_attr("q", "a\"b<c").with_text("x & y < z");
        let xml = e.to_xml();
        assert_eq!(xml, r#"<t q="a&quot;b&lt;c">x &amp; y &lt; z</t>"#);
        assert_eq!(parse(&xml).unwrap(), e);
    }

    #[test]
    fn roundtrip_nested() {
        let doc = Element::new("nitf")
            .with_child(
                Element::new("head").with_child(Element::new("title").with_text("Breaking")),
            )
            .with_child(Element::new("body").with_text("Text with 'quotes' and émojis ☂"));
        assert_eq!(parse(&doc.to_xml()).unwrap(), doc);
    }

    #[test]
    fn children_named_filters() {
        let e = parse("<l><i>1</i><j/><i>2</i></l>").unwrap();
        let vals: Vec<String> = e.children_named("i").map(|c| c.text()).collect();
        assert_eq!(vals, vec!["1", "2"]);
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("<a>").unwrap_err();
        assert_eq!(err.offset, 3);
        assert!(err.to_string().contains("byte 3"));
    }
}
