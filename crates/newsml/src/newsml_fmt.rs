//! NewsML-style XML encoding.
//!
//! Paper §7: the prototype "uses the simpler NITF format … we expect to do
//! much more as we move towards NewsML and begin to enrich the subscription
//! space". This module provides that richer encoding: a `<newsItem>`
//! document with an explicit `<itemMeta>` / `<contentMeta>` split,
//! qualified subject codes, revision linkage and provider metadata —
//! the shape subscription expressions are built from.
//!
//! ```text
//! <newsItem guid="p1:42" version="2">
//!   <itemMeta>
//!     <provider literal="p1"/>
//!     <firstCreated>123456</firstCreated>
//!     <urgency>3</urgency>
//!     <link rel="supersedes" residref="p1:40"/>
//!   </itemMeta>
//!   <contentMeta>
//!     <headline>…</headline>
//!     <slugline>…</slugline>
//!     <subject type="category" qcode="cat:technology"/>
//!     <subject type="mediatopic" qcode="subj:04.003"/>
//!     <meta name="region" value="eu"/>
//!   </contentMeta>
//!   <contentSet size="1800"/>
//! </newsItem>
//! ```

use std::fmt;

use crate::item::{ItemId, NewsItem, PublisherId, Urgency};
use crate::subject::{Category, Subject};
use crate::xml::{parse, Element, ParseXmlError};

/// Failure decoding a NewsML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNewsmlError {
    /// The underlying XML was malformed.
    Xml(ParseXmlError),
    /// Well-formed XML, wrong shape.
    Shape(String),
}

impl fmt::Display for ParseNewsmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNewsmlError::Xml(e) => write!(f, "invalid newsml xml: {e}"),
            ParseNewsmlError::Shape(m) => write!(f, "invalid newsml document: {m}"),
        }
    }
}

impl std::error::Error for ParseNewsmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseNewsmlError::Xml(e) => Some(e),
            ParseNewsmlError::Shape(_) => None,
        }
    }
}

impl From<ParseXmlError> for ParseNewsmlError {
    fn from(e: ParseXmlError) -> Self {
        ParseNewsmlError::Xml(e)
    }
}

fn shape(m: impl Into<String>) -> ParseNewsmlError {
    ParseNewsmlError::Shape(m.into())
}

/// Encodes an item as a NewsML document tree.
pub fn to_newsml(item: &NewsItem) -> Element {
    let mut item_meta = Element::new("itemMeta")
        .with_child(Element::new("provider").with_attr("literal", item.id.publisher.to_string()))
        .with_child(Element::new("firstCreated").with_text(item.issued_us.to_string()))
        .with_child(Element::new("urgency").with_text(item.urgency.to_string()));
    if let Some(sup) = item.supersedes {
        item_meta = item_meta.with_child(
            Element::new("link")
                .with_attr("rel", "supersedes")
                .with_attr("residref", sup.to_string()),
        );
    }

    let mut content_meta = Element::new("contentMeta")
        .with_child(Element::new("headline").with_text(item.headline.clone()))
        .with_child(Element::new("slugline").with_text(item.slug.clone()));
    for c in &item.categories {
        content_meta = content_meta.with_child(
            Element::new("subject")
                .with_attr("type", "category")
                .with_attr("qcode", format!("cat:{}", c.name())),
        );
    }
    for s in &item.subjects {
        content_meta = content_meta.with_child(
            Element::new("subject")
                .with_attr("type", "mediatopic")
                .with_attr("qcode", format!("subj:{}", s.key())),
        );
    }
    for (k, v) in &item.meta {
        content_meta = content_meta.with_child(
            Element::new("meta").with_attr("name", k.clone()).with_attr("value", v.clone()),
        );
    }

    Element::new("newsItem")
        .with_attr("guid", item.id.to_string())
        .with_attr("version", item.revision.to_string())
        .with_child(item_meta)
        .with_child(content_meta)
        .with_child(Element::new("contentSet").with_attr("size", item.body_len.to_string()))
}

/// Encodes an item as a NewsML XML string.
pub fn to_newsml_xml(item: &NewsItem) -> String {
    to_newsml(item).to_xml()
}

fn parse_guid(s: &str) -> Result<ItemId, ParseNewsmlError> {
    let rest = s.strip_prefix('p').ok_or_else(|| shape(format!("bad guid `{s}`")))?;
    let (p, seq) = rest.split_once(':').ok_or_else(|| shape(format!("bad guid `{s}`")))?;
    Ok(ItemId::new(
        PublisherId(p.parse().map_err(|_| shape("bad provider id"))?),
        seq.parse().map_err(|_| shape("bad sequence"))?,
    ))
}

/// Decodes a NewsML document tree.
///
/// # Errors
///
/// Returns [`ParseNewsmlError::Shape`] for missing or malformed structure.
pub fn from_newsml(root: &Element) -> Result<NewsItem, ParseNewsmlError> {
    if root.name != "newsItem" {
        return Err(shape(format!("root is <{}>, expected <newsItem>", root.name)));
    }
    let id = parse_guid(root.attr("guid").ok_or_else(|| shape("missing guid"))?)?;
    let revision: u32 =
        root.attr("version").unwrap_or("0").parse().map_err(|_| shape("bad version"))?;

    let item_meta = root.child("itemMeta").ok_or_else(|| shape("missing <itemMeta>"))?;
    let issued_us: u64 = item_meta
        .child("firstCreated")
        .map(|e| e.text().parse().map_err(|_| shape("bad firstCreated")))
        .transpose()?
        .unwrap_or(0);
    let urgency = match item_meta.child("urgency") {
        Some(u) => {
            let lvl: u8 = u.text().parse().map_err(|_| shape("bad urgency"))?;
            if !(1..=8).contains(&lvl) {
                return Err(shape("urgency out of range"));
            }
            Urgency::new(lvl)
        }
        None => Urgency::default(),
    };
    let supersedes = item_meta
        .children_named("link")
        .find(|l| l.attr("rel") == Some("supersedes"))
        .and_then(|l| l.attr("residref"))
        .map(parse_guid)
        .transpose()?;

    let content_meta = root.child("contentMeta").ok_or_else(|| shape("missing <contentMeta>"))?;
    let headline = content_meta.child("headline").map(|h| h.text()).unwrap_or_default();
    let slug = content_meta.child("slugline").map(|s| s.text()).unwrap_or_default();

    let mut builder = NewsItem::builder(id.publisher, id.seq)
        .headline(headline)
        .slug(slug)
        .urgency(urgency)
        .revision(revision, supersedes)
        .issued_us(issued_us);

    for subj in content_meta.children_named("subject") {
        let qcode = subj.attr("qcode").ok_or_else(|| shape("subject missing qcode"))?;
        match qcode.split_once(':') {
            Some(("cat", name)) => {
                builder =
                    builder.category(name.parse::<Category>().map_err(|e| shape(e.to_string()))?);
            }
            Some(("subj", code)) => {
                builder =
                    builder.subject(code.parse::<Subject>().map_err(|e| shape(e.to_string()))?);
            }
            _ => return Err(shape(format!("unknown qcode scheme in `{qcode}`"))),
        }
    }
    for m in content_meta.children_named("meta") {
        builder = builder.meta(
            m.attr("name").ok_or_else(|| shape("meta missing name"))?,
            m.attr("value").unwrap_or(""),
        );
    }

    let body_len: u32 = root
        .child("contentSet")
        .and_then(|c| c.attr("size"))
        .map(|v| v.parse().map_err(|_| shape("bad contentSet size")))
        .transpose()?
        .unwrap_or(0);
    Ok(builder.body_len(body_len).build())
}

/// Decodes a NewsML XML string.
///
/// # Errors
///
/// Returns [`ParseNewsmlError`] on malformed XML or structure.
pub fn from_newsml_xml(xml: &str) -> Result<NewsItem, ParseNewsmlError> {
    from_newsml(&parse(xml)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NewsItem {
        NewsItem::builder(PublisherId(2), 77)
            .headline("NewsML arrives <soon>")
            .category(Category::Business)
            .category(Category::World)
            .subject("04.003".parse().unwrap())
            .subject("11".parse().unwrap())
            .urgency(Urgency::new(4))
            .issued_us(5_000_000)
            .body_len(900)
            .meta("region", "apac")
            .revision(2, Some(ItemId::new(PublisherId(2), 70)))
            .build()
    }

    #[test]
    fn roundtrip_full_item() {
        let item = sample();
        assert_eq!(from_newsml_xml(&to_newsml_xml(&item)).unwrap(), item);
    }

    #[test]
    fn roundtrip_minimal_item() {
        let item = NewsItem::builder(PublisherId(0), 0).headline("x").build();
        assert_eq!(from_newsml_xml(&to_newsml_xml(&item)).unwrap(), item);
    }

    #[test]
    fn nitf_and_newsml_agree_on_the_model() {
        // Both encodings are faithful: converting through either yields the
        // same in-memory item.
        let item = sample();
        let via_nitf = crate::from_nitf_xml(&crate::to_nitf_xml(&item)).unwrap();
        let via_newsml = from_newsml_xml(&to_newsml_xml(&item)).unwrap();
        assert_eq!(via_nitf, via_newsml);
    }

    #[test]
    fn rejects_wrong_root_and_bad_qcode() {
        assert!(from_newsml_xml("<nitf/>").is_err());
        let xml = to_newsml_xml(&sample()).replace("cat:business", "weird:business");
        let err = from_newsml_xml(&xml).unwrap_err();
        assert!(err.to_string().contains("qcode"));
    }

    #[test]
    fn rejects_missing_guid() {
        let xml = to_newsml_xml(&sample()).replace("guid=\"p2:77\" ", "");
        assert!(from_newsml_xml(&xml).is_err());
    }

    #[test]
    fn supersedes_link_preserved() {
        let item = sample();
        let xml = to_newsml_xml(&item);
        assert!(xml.contains("rel=\"supersedes\""));
        assert!(xml.contains("residref=\"p2:70\""));
        let back = from_newsml_xml(&xml).unwrap();
        assert_eq!(back.supersedes, Some(ItemId::new(PublisherId(2), 70)));
    }
}
