//! The news item model.
//!
//! Paper §9: "News items are uniquely identified by the publisher as part of
//! the news item meta-data" — that id drives duplicate suppression when
//! redundant representatives forward the same item, and the revision history
//! in the metadata drives cache fusion and garbage collection.

use std::fmt;

use crate::subject::{Category, Subject};

/// Identifier of a publisher (news source), dense per deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PublisherId(pub u16);

impl fmt::Display for PublisherId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Globally unique news-item identifier: publisher plus publisher-assigned
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ItemId {
    /// The publishing source.
    pub publisher: PublisherId,
    /// Publisher-local sequence number.
    pub seq: u64,
}

impl ItemId {
    /// Creates an item id.
    pub fn new(publisher: PublisherId, seq: u64) -> Self {
        ItemId { publisher, seq }
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.publisher, self.seq)
    }
}

/// Item urgency on the NITF 1 (flash) … 8 (routine) scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Urgency(u8);

impl Urgency {
    /// Highest urgency (news flash).
    pub const FLASH: Urgency = Urgency(1);
    /// Default urgency.
    pub const ROUTINE: Urgency = Urgency(5);

    /// Creates an urgency level.
    ///
    /// # Panics
    ///
    /// Panics unless `level` is in `1..=8`.
    pub fn new(level: u8) -> Self {
        assert!((1..=8).contains(&level), "urgency must be 1..=8");
        Urgency(level)
    }

    /// The numeric level, 1 (most urgent) to 8.
    pub fn level(self) -> u8 {
        self.0
    }
}

impl Default for Urgency {
    fn default() -> Self {
        Urgency::ROUTINE
    }
}

impl fmt::Display for Urgency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One news item with its NITF/NewsML-style metadata.
///
/// Construct with [`NewsItemBuilder`]:
///
/// ```
/// use newsml::{NewsItem, PublisherId, Category};
/// let item = NewsItem::builder(PublisherId(3), 17)
///     .headline("Kernel 2.5.60 released")
///     .category(Category::Technology)
///     .subject("04.003".parse()?)
///     .body_len(1800)
///     .build();
/// assert_eq!(item.id.seq, 17);
/// assert!(item.categories.contains(&Category::Technology));
/// # Ok::<(), newsml::ParseSubjectError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewsItem {
    /// Unique publisher-assigned identifier.
    pub id: ItemId,
    /// Revision number of this item (0 = original, >0 = update).
    pub revision: u32,
    /// Id of the item this revision supersedes, if any.
    pub supersedes: Option<ItemId>,
    /// Headline text.
    pub headline: String,
    /// Short editorial slug (stable across revisions of one story).
    pub slug: String,
    /// Coarse categories (the prototype subscription space).
    pub categories: Vec<Category>,
    /// Hierarchical subject codes (the Bloom subscription space).
    pub subjects: Vec<Subject>,
    /// NITF urgency.
    pub urgency: Urgency,
    /// Issue time in microseconds of simulated time.
    pub issued_us: u64,
    /// Body length in bytes. The simulation carries sizes, not prose: the
    /// protocols only ever look at metadata, so synthetic bodies would be
    /// dead weight at 10^5-node scale.
    pub body_len: u32,
    /// Free-form metadata pairs, queried by subscriber SQL predicates.
    pub meta: Vec<(String, String)>,
}

impl NewsItem {
    /// Starts building an item for `publisher` with sequence number `seq`.
    pub fn builder(publisher: PublisherId, seq: u64) -> NewsItemBuilder {
        NewsItemBuilder {
            item: NewsItem {
                id: ItemId::new(publisher, seq),
                revision: 0,
                supersedes: None,
                headline: String::new(),
                slug: String::new(),
                categories: Vec::new(),
                subjects: Vec::new(),
                urgency: Urgency::default(),
                issued_us: 0,
                body_len: 0,
                meta: Vec::new(),
            },
        }
    }

    /// The Bloom subscription keys this item matches: one per
    /// `publisher/category` pair plus one per subject prefix, so both broad
    /// and narrow subscriptions hit.
    pub fn subscription_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        for c in &self.categories {
            keys.push(format!("{}/{}", self.id.publisher, c.name()));
        }
        for s in &self.subjects {
            for p in s.prefixes() {
                keys.push(format!("subject/{}", p.key()));
            }
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Approximate wire size of the item in bytes (headers + metadata +
    /// body).
    pub fn wire_size(&self) -> usize {
        64 // id, revision, urgency, timestamps
            + self.headline.len()
            + self.slug.len()
            + self.categories.len() * 2
            + self.subjects.iter().map(|s| s.depth() * 2 + 2).sum::<usize>()
            + self.meta.iter().map(|(k, v)| k.len() + v.len() + 4).sum::<usize>()
            + self.body_len as usize
    }

    /// Value of a metadata field, if present. The builtin fields
    /// (`headline`, `slug`, `urgency`, `publisher`, `revision`) are exposed
    /// with those names so SQL predicates can reference them uniformly.
    pub fn field(&self, name: &str) -> Option<String> {
        match name {
            "headline" => Some(self.headline.clone()),
            "slug" => Some(self.slug.clone()),
            "urgency" => Some(self.urgency.level().to_string()),
            "publisher" => Some(self.id.publisher.0.to_string()),
            "revision" => Some(self.revision.to_string()),
            "body_len" => Some(self.body_len.to_string()),
            _ => self.meta.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone()),
        }
    }

    /// True when this item is a newer revision of the same story as `other`
    /// (same slug and publisher, higher revision).
    pub fn supersedes_item(&self, other: &NewsItem) -> bool {
        self.id.publisher == other.id.publisher
            && self.slug == other.slug
            && self.revision > other.revision
    }
}

/// Builder for [`NewsItem`] (see there for an example).
#[derive(Debug, Clone)]
pub struct NewsItemBuilder {
    item: NewsItem,
}

impl NewsItemBuilder {
    /// Sets the headline.
    #[must_use]
    pub fn headline(mut self, h: impl Into<String>) -> Self {
        self.item.headline = h.into();
        self
    }

    /// Sets the slug (defaults to the headline if never set).
    #[must_use]
    pub fn slug(mut self, s: impl Into<String>) -> Self {
        self.item.slug = s.into();
        self
    }

    /// Adds a category.
    #[must_use]
    pub fn category(mut self, c: Category) -> Self {
        if !self.item.categories.contains(&c) {
            self.item.categories.push(c);
        }
        self
    }

    /// Adds a subject code.
    #[must_use]
    pub fn subject(mut self, s: Subject) -> Self {
        if !self.item.subjects.contains(&s) {
            self.item.subjects.push(s);
        }
        self
    }

    /// Sets the urgency.
    #[must_use]
    pub fn urgency(mut self, u: Urgency) -> Self {
        self.item.urgency = u;
        self
    }

    /// Sets the revision number and the superseded item id.
    #[must_use]
    pub fn revision(mut self, rev: u32, supersedes: Option<ItemId>) -> Self {
        self.item.revision = rev;
        self.item.supersedes = supersedes;
        self
    }

    /// Sets the issue timestamp (simulated microseconds).
    #[must_use]
    pub fn issued_us(mut self, t: u64) -> Self {
        self.item.issued_us = t;
        self
    }

    /// Sets the body length in bytes.
    #[must_use]
    pub fn body_len(mut self, len: u32) -> Self {
        self.item.body_len = len;
        self
    }

    /// Adds a free-form metadata pair.
    #[must_use]
    pub fn meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.item.meta.push((key.into(), value.into()));
        self
    }

    /// Finishes the item.
    pub fn build(mut self) -> NewsItem {
        if self.item.slug.is_empty() {
            self.item.slug = self.item.headline.to_lowercase().replace(' ', "-");
        }
        self.item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NewsItem {
        NewsItem::builder(PublisherId(1), 42)
            .headline("Astrolabe Ships")
            .category(Category::Technology)
            .category(Category::Science)
            .subject("04.003".parse().unwrap())
            .urgency(Urgency::new(3))
            .body_len(1000)
            .meta("region", "asia")
            .build()
    }

    #[test]
    fn builder_defaults_slug_from_headline() {
        let item = sample();
        assert_eq!(item.slug, "astrolabe-ships");
        assert_eq!(item.revision, 0);
    }

    #[test]
    fn subscription_keys_cover_categories_and_subject_prefixes() {
        let keys = sample().subscription_keys();
        assert!(keys.contains(&"p1/technology".to_string()));
        assert!(keys.contains(&"p1/science".to_string()));
        assert!(keys.contains(&"subject/04".to_string()));
        assert!(keys.contains(&"subject/04.003".to_string()));
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn duplicate_categories_collapse() {
        let item = NewsItem::builder(PublisherId(0), 0)
            .category(Category::Sports)
            .category(Category::Sports)
            .build();
        assert_eq!(item.categories.len(), 1);
    }

    #[test]
    fn field_lookup() {
        let item = sample();
        assert_eq!(item.field("urgency").as_deref(), Some("3"));
        assert_eq!(item.field("publisher").as_deref(), Some("1"));
        assert_eq!(item.field("region").as_deref(), Some("asia"));
        assert_eq!(item.field("missing"), None);
    }

    #[test]
    fn revision_supersedes() {
        let v0 = sample();
        let v1 = NewsItem::builder(PublisherId(1), 43)
            .headline("Astrolabe Ships")
            .revision(1, Some(v0.id))
            .build();
        assert!(v1.supersedes_item(&v0));
        assert!(!v0.supersedes_item(&v1));
    }

    #[test]
    fn wire_size_includes_body() {
        let item = sample();
        assert!(item.wire_size() > 1000);
        assert!(item.wire_size() < 1300);
    }

    #[test]
    #[should_panic(expected = "urgency")]
    fn urgency_range_enforced() {
        Urgency::new(0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ItemId::new(PublisherId(2), 9).to_string(), "p2:9");
        assert_eq!(Urgency::FLASH.to_string(), "1");
    }
}
