//! Content-defined chunking (CDC) for article revision deltas.
//!
//! News items in this reproduction carry only a `body_len` — the prose
//! itself never materializes in the simulator. To model delta encoding
//! honestly anyway, both endpoints derive the *same* deterministic
//! synthetic body from `(publisher, slug, revision, body_len)` via
//! [`synthetic_body`], chunk it with a Gear rolling hash ([`chunk`]), and
//! price a revision-to-revision transfer as "changed chunks + chunk
//! references" via [`delta_cost`]. Because the derivation is a pure
//! function of item metadata, a sender can compute exactly what a
//! receiver holding revision `r` would need — no real bytes ever cross
//! the wire, only an accounting of how many would have.
//!
//! The chunker is standard Gear CDC: roll `h = (h << 1) + GEAR[byte]`,
//! cut when the top bits of `h` are zero, clamp chunk sizes to
//! `[CDC_MIN, CDC_MAX]`. Boundaries are content-defined, so an insert,
//! delete, or prepend only disturbs the chunks overlapping the edit —
//! every other chunk keeps its hash (tested below).

use crate::item::PublisherId;

/// Minimum chunk length in bytes.
pub const CDC_MIN: usize = 64;
/// Average chunk length is `1 << CDC_AVG_BITS` bytes (256).
pub const CDC_AVG_BITS: u32 = 8;
/// Maximum chunk length in bytes (forced cut).
pub const CDC_MAX: usize = 1024;

/// Per-chunk wire overhead when a chunk is shipped literally
/// (offset + length header).
pub const CHUNK_LITERAL_OVERHEAD: usize = 4;
/// Wire cost of referencing a chunk the receiver already holds (its hash).
pub const CHUNK_REF_COST: usize = 8;
/// Fixed per-delta header (baseline revision + chunk count).
pub const DELTA_HEADER: usize = 8;

const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const fn gear_table() -> [u64; 256] {
    let mut t = [0u64; 256];
    let mut i = 0usize;
    while i < 256 {
        // Chain splitmix64 so every entry mixes all 64 bits.
        t[i] = splitmix64((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6E65_7773_6D6C_2121);
        i += 1;
    }
    t
}

static GEAR: [u64; 256] = gear_table();

/// FNV-1a over a byte slice (chunk fingerprints, slug keys).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable 64-bit key for a story line: hashes `(publisher, slug)`.
/// Used as the compact identifier in baseline hints so a requester can
/// tell a responder which revision of which story it already holds.
pub fn slug_key(publisher: PublisherId, slug: &str) -> u64 {
    let mut h = fnv64(slug.as_bytes());
    h ^= u64::from(publisher.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(h)
}

/// One content-defined chunk of a body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Byte offset of the chunk within the body.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
    /// FNV-1a fingerprint of the chunk's bytes.
    pub hash: u64,
}

/// Splits `data` into content-defined chunks with the Gear rolling hash.
///
/// Deterministic: the same bytes always produce the same boundaries and
/// fingerprints, and a local edit only moves boundaries inside the
/// `[CDC_MIN, CDC_MAX]` window around it.
pub fn chunk(data: &[u8]) -> Vec<Chunk> {
    let mask: u64 = !0u64 << (64 - CDC_AVG_BITS);
    let mut out = Vec::with_capacity(data.len() / (1 << CDC_AVG_BITS) + 1);
    let mut start = 0usize;
    while start < data.len() {
        let end_max = (start + CDC_MAX).min(data.len());
        let mut h = 0u64;
        let mut cut = end_max;
        let mut i = start;
        while i < end_max {
            h = (h << 1).wrapping_add(GEAR[data[i] as usize]);
            i += 1;
            if i - start >= CDC_MIN && h & mask == 0 {
                cut = i;
                break;
            }
        }
        out.push(Chunk {
            offset: start as u32,
            len: (cut - start) as u32,
            hash: fnv64(&data[start..cut]),
        });
        start = cut;
    }
    out
}

/// Derives the deterministic synthetic body for one revision of a story.
///
/// The base stream is positional — byte block `i` depends only on the
/// `(publisher, slug)` seed and `i` — so two revisions of different
/// lengths share their common prefix. Each revision `1..=revision` then
/// overwrites a few seeded edit windows in place, modelling editorial
/// changes that leave most of the article untouched.
pub fn synthetic_body(publisher: PublisherId, slug: &str, revision: u32, body_len: u32) -> Vec<u8> {
    let len = body_len as usize;
    let seed = slug_key(publisher, slug);
    let mut body = vec![0u8; len];
    for (i, block) in body.chunks_mut(8).enumerate() {
        let w = splitmix64(seed ^ (i as u64)).to_le_bytes();
        block.copy_from_slice(&w[..block.len()]);
    }
    for r in 1..=u64::from(revision) {
        let h = splitmix64(seed ^ r.wrapping_mul(0xA24B_AED4_963E_E407));
        let edits = 1 + (h % 2) as usize;
        for e in 0..edits as u64 {
            let eh = splitmix64(h ^ e.wrapping_mul(0x9FB2_1C65_1E98_DF25));
            let window = 48 + (eh % 144) as usize;
            if len <= window {
                // Tiny bodies: rewrite everything for this edit.
                for (i, b) in body.iter_mut().enumerate() {
                    *b = splitmix64(eh ^ (i as u64)).to_le_bytes()[0];
                }
                continue;
            }
            let pos = (eh >> 32) as usize % (len - window);
            for (i, b) in body[pos..pos + window].iter_mut().enumerate() {
                *b = splitmix64(eh ^ 0x5851_F42D_4C95_7F2D ^ (i as u64)).to_le_bytes()[0];
            }
        }
    }
    body
}

/// Priced outcome of shipping one revision as a delta against a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaCost {
    /// Bytes to ship the body whole (`cur_len`).
    pub full: usize,
    /// Bytes to ship as a delta: header + per-chunk references for reused
    /// chunks + literal bytes for changed chunks. May exceed `full` when
    /// the revisions share little; use [`DeltaCost::effective`].
    pub delta: usize,
    /// Chunk count of the current revision.
    pub chunks_total: usize,
    /// Chunks of the current revision absent from the baseline.
    pub chunks_changed: usize,
}

impl DeltaCost {
    /// Bytes actually sent: a sender falls back to the full body whenever
    /// the delta would not be smaller.
    pub fn effective(&self) -> usize {
        self.delta.min(self.full)
    }

    /// Bytes saved relative to shipping the full body.
    pub fn saved(&self) -> usize {
        self.full - self.effective()
    }
}

/// Prices shipping revision `cur_rev` (length `cur_len`) of a story to a
/// receiver known to hold revision `base_rev` (length `base_len`).
///
/// Both bodies are derived with [`synthetic_body`] and chunked; the delta
/// ships literally only the chunks whose fingerprints the baseline lacks.
/// Pure function of its arguments — sender-side accounting needs no
/// receiver round-trip.
pub fn delta_cost(
    publisher: PublisherId,
    slug: &str,
    base_rev: u32,
    base_len: u32,
    cur_rev: u32,
    cur_len: u32,
) -> DeltaCost {
    let cur = synthetic_body(publisher, slug, cur_rev, cur_len);
    let cur_chunks = chunk(&cur);
    let base = synthetic_body(publisher, slug, base_rev, base_len);
    let base_hashes: std::collections::HashSet<u64> = chunk(&base).iter().map(|c| c.hash).collect();
    let mut delta = DELTA_HEADER;
    let mut changed = 0usize;
    for c in &cur_chunks {
        if base_hashes.contains(&c.hash) {
            delta += CHUNK_REF_COST;
        } else {
            changed += 1;
            delta += CHUNK_LITERAL_OVERHEAD + c.len as usize;
        }
    }
    DeltaCost {
        full: cur_len as usize,
        delta,
        chunks_total: cur_chunks.len(),
        chunks_changed: changed,
    }
}

/// Memoized [`delta_cost`]: wire-byte accounting calls this per message
/// *send*, and a revised story crosses hundreds of tree hops with the same
/// `(baseline, current)` pair — deriving and chunking both bodies each time
/// would dominate the simulation. Keyed by `(slug_key, revisions, lengths)`;
/// the cache is global and append-only (the function is pure).
pub fn delta_cost_memo(
    publisher: PublisherId,
    slug: &str,
    base_rev: u32,
    base_len: u32,
    cur_rev: u32,
    cur_len: u32,
) -> DeltaCost {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type MemoKey = (u64, u32, u32, u32, u32);
    static MEMO: OnceLock<Mutex<HashMap<MemoKey, DeltaCost>>> = OnceLock::new();
    let key = (slug_key(publisher, slug), base_rev, base_len, cur_rev, cur_len);
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        return *hit;
    }
    let cost = delta_cost(publisher, slug, base_rev, base_len, cur_rev, cur_len);
    memo.lock().unwrap().insert(key, cost);
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn body(n: usize, seed: u64) -> Vec<u8> {
        let mut v = vec![0u8; n];
        for (i, b) in v.iter_mut().enumerate() {
            *b = splitmix64(seed ^ (i as u64)).to_le_bytes()[0];
        }
        v
    }

    #[test]
    fn chunks_tile_the_input_exactly() {
        let data = body(10_000, 7);
        let chunks = chunk(&data);
        let mut pos = 0u32;
        for c in &chunks {
            assert_eq!(c.offset, pos);
            assert!(c.len as usize >= CDC_MIN || (c.offset + c.len) as usize == data.len());
            assert!(c.len as usize <= CDC_MAX);
            pos += c.len;
        }
        assert_eq!(pos as usize, data.len());
        // Average should be loosely around the 256-byte target.
        let avg = data.len() / chunks.len();
        assert!((96..=640).contains(&avg), "average chunk {avg}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(chunk(&[]).is_empty());
        let c = chunk(&[1, 2, 3]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].len, 3);
    }

    #[test]
    fn insert_keeps_unrelated_chunk_hashes() {
        let base = body(8_192, 42);
        let mut edited = base.clone();
        edited.splice(4_000..4_000, [0xAAu8; 37]); // 37-byte insert mid-stream
        let a: HashSet<u64> = chunk(&base).iter().map(|c| c.hash).collect();
        let b: Vec<Chunk> = chunk(&edited);
        let reused = b.iter().filter(|c| a.contains(&c.hash)).count();
        // Everything except the handful of chunks around the edit survives.
        assert!(reused >= b.len() - 4, "reused {reused} of {}", b.len());
        assert!(b.iter().any(|c| !a.contains(&c.hash)));
    }

    #[test]
    fn delete_keeps_unrelated_chunk_hashes() {
        let base = body(8_192, 43);
        let mut edited = base.clone();
        edited.drain(2_000..2_120);
        let a: HashSet<u64> = chunk(&base).iter().map(|c| c.hash).collect();
        let b: Vec<Chunk> = chunk(&edited);
        let reused = b.iter().filter(|c| a.contains(&c.hash)).count();
        assert!(reused >= b.len() - 4, "reused {reused} of {}", b.len());
    }

    #[test]
    fn prepend_keeps_unrelated_chunk_hashes() {
        let base = body(8_192, 44);
        let mut edited = vec![0x55u8; 300];
        edited.extend_from_slice(&base);
        let a: HashSet<u64> = chunk(&base).iter().map(|c| c.hash).collect();
        let b: Vec<Chunk> = chunk(&edited);
        let reused = b.iter().filter(|c| a.contains(&c.hash)).count();
        // The prepended run plus at most the straddling chunk differ.
        assert!(reused >= b.len() - 4, "reused {reused} of {}", b.len());
    }

    #[test]
    fn synthetic_body_deterministic_and_prefix_stable() {
        let p = PublisherId(3);
        let a = synthetic_body(p, "quake", 2, 4_096);
        let b = synthetic_body(p, "quake", 2, 4_096);
        assert_eq!(a, b);
        // Revision 0 of different lengths shares the common prefix.
        let short = synthetic_body(p, "quake", 0, 1_000);
        let long = synthetic_body(p, "quake", 0, 2_000);
        assert_eq!(short[..], long[..1_000]);
        // Different slugs diverge.
        assert_ne!(synthetic_body(p, "storm", 2, 4_096), a);
    }

    #[test]
    fn adjacent_revisions_delta_small_distant_large() {
        let p = PublisherId(9);
        let near = delta_cost(p, "merger", 3, 6_000, 4, 6_000);
        assert!(near.effective() < near.full / 3, "near delta {near:?}");
        assert!(near.chunks_changed < near.chunks_total);
        // Same revision → pure references, tiny.
        let same = delta_cost(p, "merger", 4, 6_000, 4, 6_000);
        assert_eq!(same.chunks_changed, 0);
        assert!(same.effective() < same.full / 10);
        // A different slug's baseline shares nothing; effective cost caps
        // at the full body.
        let cold = delta_cost(p, "merger", 0, 50, 4, 6_000);
        assert!(cold.effective() <= cold.full);
        assert_eq!(same.saved() + same.effective(), same.full);
    }

    #[test]
    fn delta_cost_memo_matches_direct() {
        let p = PublisherId(3);
        let direct = delta_cost(p, "memo", 1, 4_000, 2, 4_100);
        assert_eq!(delta_cost_memo(p, "memo", 1, 4_000, 2, 4_100), direct);
        assert_eq!(delta_cost_memo(p, "memo", 1, 4_000, 2, 4_100), direct, "cached hit");
    }

    #[test]
    fn slug_key_mixes_publisher_and_slug() {
        let k = slug_key(PublisherId(1), "alpha");
        assert_ne!(k, slug_key(PublisherId(2), "alpha"));
        assert_ne!(k, slug_key(PublisherId(1), "beta"));
        assert_eq!(k, slug_key(PublisherId(1), "alpha"));
    }
}
