//! News categories and hierarchical subject codes.
//!
//! Two granularities, matching the paper's two subscription generations
//! (§7): a coarse [`Category`] enum that maps onto the per-publisher bitmask
//! of the early prototype, and hierarchical IPTC-style [`Subject`] codes
//! ("04003005"-like paths) that feed the Bloom-filter subject space.

use std::fmt;
use std::str::FromStr;

/// Coarse news categories, one bit each in the prototype's category mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Politics and government.
    Politics = 0,
    /// Business, markets, finance.
    Business = 1,
    /// Technology (the Slashdot-configuration mainstay).
    Technology = 2,
    /// Science and research.
    Science = 3,
    /// Sports.
    Sports = 4,
    /// Entertainment and culture.
    Entertainment = 5,
    /// Health and medicine.
    Health = 6,
    /// International / world news.
    World = 7,
    /// Weather.
    Weather = 8,
    /// Security, defence.
    Security = 9,
    /// Law and justice.
    Law = 10,
    /// Education.
    Education = 11,
}

impl Category {
    /// All categories, in bit order.
    pub const ALL: [Category; 12] = [
        Category::Politics,
        Category::Business,
        Category::Technology,
        Category::Science,
        Category::Sports,
        Category::Entertainment,
        Category::Health,
        Category::World,
        Category::Weather,
        Category::Security,
        Category::Law,
        Category::Education,
    ];

    /// The bit index this category occupies in a category mask (see the
    /// `filters` crate's `CategoryMask`).
    pub fn bit(self) -> u8 {
        self as u8
    }

    /// Canonical lowercase name (used in subject keys and XML).
    pub fn name(self) -> &'static str {
        match self {
            Category::Politics => "politics",
            Category::Business => "business",
            Category::Technology => "technology",
            Category::Science => "science",
            Category::Sports => "sports",
            Category::Entertainment => "entertainment",
            Category::Health => "health",
            Category::World => "world",
            Category::Weather => "weather",
            Category::Security => "security",
            Category::Law => "law",
            Category::Education => "education",
        }
    }

    /// Category with the given bit index, if any.
    pub fn from_bit(bit: u8) -> Option<Category> {
        Category::ALL.get(bit as usize).copied()
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Category`] from its name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCategoryError(String);

impl fmt::Display for ParseCategoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown news category `{}`", self.0)
    }
}
impl std::error::Error for ParseCategoryError {}

impl FromStr for Category {
    type Err = ParseCategoryError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Category::ALL
            .iter()
            .find(|c| c.name() == s)
            .copied()
            .ok_or_else(|| ParseCategoryError(s.to_owned()))
    }
}

/// A hierarchical IPTC-style subject code: a path of numeric components,
/// e.g. `04.003.005` = business / computing / open-source.
///
/// ```
/// use newsml::Subject;
/// let s: Subject = "04.003.005".parse()?;
/// assert!(s.is_descendant_of(&"04.003".parse()?));
/// assert_eq!(s.to_string(), "04.003.005");
/// # Ok::<(), newsml::ParseSubjectError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Subject {
    path: Vec<u16>,
}

impl Subject {
    /// Builds a subject from path components.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty.
    pub fn new(path: Vec<u16>) -> Self {
        assert!(!path.is_empty(), "subject path cannot be empty");
        Subject { path }
    }

    /// Path components, most general first.
    pub fn components(&self) -> &[u16] {
        &self.path
    }

    /// Depth of the code (1 = top-level).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// The immediate parent, or `None` for a top-level subject.
    pub fn parent(&self) -> Option<Subject> {
        if self.path.len() <= 1 {
            None
        } else {
            Some(Subject { path: self.path[..self.path.len() - 1].to_vec() })
        }
    }

    /// True when `self` equals `other` or lies below it in the taxonomy.
    pub fn is_descendant_of(&self, other: &Subject) -> bool {
        self.path.len() >= other.path.len() && self.path[..other.path.len()] == other.path[..]
    }

    /// Canonical string key for hashing into Bloom filters.
    pub fn key(&self) -> String {
        self.to_string()
    }

    /// All prefixes of this subject, most general first (used so a
    /// subscription to `04.003` matches an item tagged `04.003.005`).
    pub fn prefixes(&self) -> impl Iterator<Item = Subject> + '_ {
        (1..=self.path.len()).map(move |d| Subject { path: self.path[..d].to_vec() })
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.path.iter().map(|c| format!("{c:03}")).collect();
        // Top level uses two digits, like IPTC codes; deeper levels three.
        if let Some((first, rest)) = parts.split_first() {
            write!(f, "{:02}", first.parse::<u16>().unwrap_or(0))?;
            for r in rest {
                write!(f, ".{r}")?;
            }
        }
        Ok(())
    }
}

/// Error parsing a [`Subject`] code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSubjectError(String);

impl fmt::Display for ParseSubjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid subject code `{}`", self.0)
    }
}
impl std::error::Error for ParseSubjectError {}

impl FromStr for Subject {
    type Err = ParseSubjectError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseSubjectError(s.to_owned()));
        }
        let path: Result<Vec<u16>, _> = s.split('.').map(|p| p.parse::<u16>()).collect();
        match path {
            Ok(p) if !p.is_empty() => Ok(Subject { path: p }),
            _ => Err(ParseSubjectError(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_bits_are_dense_and_unique() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.bit() as usize, i);
            assert_eq!(Category::from_bit(c.bit()), Some(*c));
        }
        assert_eq!(Category::from_bit(12), None);
    }

    #[test]
    fn category_name_roundtrip() {
        for c in Category::ALL {
            assert_eq!(c.name().parse::<Category>().unwrap(), c);
        }
        assert!("gossip".parse::<Category>().is_err());
    }

    #[test]
    fn subject_parse_display_roundtrip() {
        for s in ["04", "04.003", "04.003.005", "11.000.999"] {
            let subj: Subject = s.parse().unwrap();
            assert_eq!(subj.to_string(), s);
        }
    }

    #[test]
    fn subject_hierarchy() {
        let leaf: Subject = "04.003.005".parse().unwrap();
        let mid: Subject = "04.003".parse().unwrap();
        let top: Subject = "04".parse().unwrap();
        let other: Subject = "05".parse().unwrap();
        assert!(leaf.is_descendant_of(&mid));
        assert!(leaf.is_descendant_of(&top));
        assert!(leaf.is_descendant_of(&leaf));
        assert!(!leaf.is_descendant_of(&other));
        assert_eq!(leaf.parent(), Some(mid));
        assert_eq!(top.parent(), None);
    }

    #[test]
    fn subject_prefixes_enumerate_ancestors() {
        let leaf: Subject = "04.003.005".parse().unwrap();
        let keys: Vec<String> = leaf.prefixes().map(|p| p.key()).collect();
        assert_eq!(keys, vec!["04", "04.003", "04.003.005"]);
    }

    #[test]
    fn subject_rejects_garbage() {
        for bad in ["", "a.b", "04..005", "04.", "-1"] {
            assert!(bad.parse::<Subject>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn subject_new_rejects_empty() {
        Subject::new(vec![]);
    }
}
