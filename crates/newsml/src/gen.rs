//! Synthetic news workload generation.
//!
//! Substitutes for the production traces the paper's authors had access to
//! (Slashdot, Reuters, AP). Publisher profiles are calibrated to the figures
//! the paper itself cites: Slashdot posts a few tens of stories per day and
//! serves ~1M front-page hits/day; wire services are an order of magnitude
//! more prolific. Story popularity and subscriber interest follow Zipf
//! distributions, the standard model for news readership.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::item::{NewsItem, PublisherId, Urgency};
use crate::subject::{Category, Subject};

/// A Zipf(α) sampler over ranks `0..n` using an explicit CDF.
///
/// ```
/// use rand::SeedableRng;
/// let z = newsml::Zipf::new(10, 1.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// assert!(z.sample(&mut rng) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has no ranks (never; construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Static description of one news source.
#[derive(Debug, Clone)]
pub struct PublisherProfile {
    /// Publisher identity.
    pub id: PublisherId,
    /// Human-readable name.
    pub name: String,
    /// Mean stories per simulated day.
    pub items_per_day: f64,
    /// Categories this source covers; earlier entries are more likely
    /// (sampled Zipf(1)).
    pub categories: Vec<Category>,
    /// Subject pool keyed per category index: each item gets a subject
    /// `CAT.<topic>` with topic sampled Zipf over this many topics.
    pub topics_per_category: u16,
    /// Body size range in bytes.
    pub body_len: (u32, u32),
    /// Probability an item is a revision of a recent story.
    pub revision_prob: f64,
    /// Diurnal modulation: when true, the publication rate follows a
    /// day/night cycle (newsrooms sleep), peaking mid-day at ~1.8x the mean
    /// and bottoming out overnight at ~0.2x.
    pub diurnal: bool,
}

impl PublisherProfile {
    /// A Slashdot-like technical community site (paper §10's first target
    /// configuration, with Wired / The Register / News.com).
    pub fn slashdot(id: PublisherId) -> Self {
        PublisherProfile {
            id,
            name: "slashdot".into(),
            items_per_day: 25.0,
            categories: vec![Category::Technology, Category::Science, Category::Law],
            topics_per_category: 40,
            body_len: (600, 4_000),
            revision_prob: 0.05,
            diurnal: true,
        }
    }

    /// A Reuters-like wire service (paper §10's second configuration, with
    /// AP and the New York Times).
    pub fn reuters(id: PublisherId) -> Self {
        PublisherProfile {
            id,
            name: "reuters".into(),
            items_per_day: 400.0,
            categories: vec![
                Category::World,
                Category::Politics,
                Category::Business,
                Category::Sports,
                Category::Entertainment,
                Category::Health,
                Category::Weather,
            ],
            topics_per_category: 120,
            body_len: (300, 2_500),
            revision_prob: 0.25,
            diurnal: false, // wire services publish around the clock
        }
    }

    /// A smaller regional/specialist outlet.
    pub fn boutique(id: PublisherId, name: &str, cat: Category) -> Self {
        PublisherProfile {
            id,
            name: name.to_owned(),
            items_per_day: 8.0,
            categories: vec![cat],
            topics_per_category: 12,
            body_len: (400, 1_500),
            revision_prob: 0.02,
            diurnal: true,
        }
    }
}

/// One scheduled publication in a generated trace.
#[derive(Debug, Clone)]
pub struct PublishEvent {
    /// Publication instant, in simulated microseconds.
    pub at_us: u64,
    /// The item to publish.
    pub item: NewsItem,
}

const HEADLINE_SUBJECTS: &[&str] = &[
    "Kernel",
    "Senate",
    "Markets",
    "Researchers",
    "Outage",
    "Merger",
    "Protocol",
    "Satellite",
    "Vaccine",
    "Tournament",
    "Studio",
    "Regulator",
    "Startup",
    "Exploit",
    "Archive",
];
const HEADLINE_VERBS: &[&str] = &[
    "ships",
    "debates",
    "rally",
    "discover",
    "disrupts",
    "approved",
    "standardized",
    "launched",
    "trialled",
    "postponed",
    "acquired",
    "fined",
    "funded",
    "patched",
    "restored",
];
const HEADLINE_OBJECTS: &[&str] = &[
    "overnight",
    "after review",
    "in Asia",
    "across Europe",
    "amid criticism",
    "at record pace",
    "for developers",
    "under new rules",
    "despite warnings",
    "to wide acclaim",
];

/// Exponential inter-arrival sample with the given mean, clamped above zero.
fn exp(rng: &mut SmallRng, mean_secs: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-u.ln() * mean_secs).max(1e-6)
}

/// Diurnal intensity at `t_us` into the day cycle: a raised cosine peaking
/// at 14:00 (1.8x) and bottoming at 02:00 (0.2x); integrates to ~1 over a
/// day so the profile's daily rate is preserved.
fn diurnal_intensity(t_us: u64) -> f64 {
    let day_frac = (t_us % 86_400_000_000) as f64 / 86_400_000_000.0;
    let phase = (day_frac - 14.0 / 24.0) * std::f64::consts::TAU;
    1.0 + 0.8 * phase.cos()
}

fn headline(rng: &mut SmallRng, seq: u64) -> String {
    format!(
        "{} {} {} (#{seq})",
        HEADLINE_SUBJECTS[rng.gen_range(0..HEADLINE_SUBJECTS.len())],
        HEADLINE_VERBS[rng.gen_range(0..HEADLINE_VERBS.len())],
        HEADLINE_OBJECTS[rng.gen_range(0..HEADLINE_OBJECTS.len())],
    )
}

/// Generates a deterministic multi-publisher publication trace.
#[derive(Debug)]
pub struct TraceGenerator {
    profiles: Vec<PublisherProfile>,
}

impl TraceGenerator {
    /// Creates a generator over the given publisher profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or two profiles share a publisher id.
    pub fn new(profiles: Vec<PublisherProfile>) -> Self {
        assert!(!profiles.is_empty(), "need at least one publisher profile");
        let mut ids: Vec<u16> = profiles.iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), profiles.len(), "duplicate publisher ids");
        TraceGenerator { profiles }
    }

    /// The profiles this generator draws from.
    pub fn profiles(&self) -> &[PublisherProfile] {
        &self.profiles
    }

    /// Generates all publications in `[0, horizon_us)`, sorted by time.
    ///
    /// Inter-arrival times are exponential per publisher; categories and
    /// topics are Zipf-distributed; a profile-dependent fraction of items are
    /// revisions of a recent story from the same source.
    pub fn generate(&self, rng: &mut SmallRng, horizon_us: u64) -> Vec<PublishEvent> {
        let mut events = Vec::new();
        for profile in &self.profiles {
            let cat_zipf = Zipf::new(profile.categories.len(), 1.0);
            let topic_zipf = Zipf::new(profile.topics_per_category as usize, 1.1);
            let mean_gap_s = 86_400.0 / profile.items_per_day;
            let mut t_us = 0u64;
            let mut seq = 0u64;
            let mut recent: Vec<NewsItem> = Vec::new();
            loop {
                // Thinning: draw at the peak rate, then accept with the
                // current intensity — a standard non-homogeneous Poisson
                // sampler that preserves the daily mean.
                let gap =
                    if profile.diurnal { exp(rng, mean_gap_s / 1.8) } else { exp(rng, mean_gap_s) };
                t_us = t_us.saturating_add((gap * 1e6) as u64);
                if t_us >= horizon_us {
                    break;
                }
                if profile.diurnal && rng.gen::<f64>() >= diurnal_intensity(t_us) / 1.8 {
                    continue;
                }
                let item = if !recent.is_empty() && rng.gen::<f64>() < profile.revision_prob {
                    let orig = &recent[rng.gen_range(0..recent.len())];
                    let mut b = NewsItem::builder(profile.id, seq)
                        .headline(orig.headline.clone())
                        .slug(orig.slug.clone())
                        .revision(orig.revision + 1, Some(orig.id))
                        .urgency(orig.urgency)
                        .issued_us(t_us)
                        .body_len(rng.gen_range(profile.body_len.0..=profile.body_len.1));
                    for c in &orig.categories {
                        b = b.category(*c);
                    }
                    for s in &orig.subjects {
                        b = b.subject(s.clone());
                    }
                    b.build()
                } else {
                    let cat = profile.categories[cat_zipf.sample(rng)];
                    let topic = topic_zipf.sample(rng) as u16;
                    let urgency = Urgency::new(rng.gen_range(2..=8));
                    NewsItem::builder(profile.id, seq)
                        .headline(headline(rng, seq))
                        .category(cat)
                        .subject(Subject::new(vec![u16::from(cat.bit()) + 1, topic + 1]))
                        .urgency(urgency)
                        .issued_us(t_us)
                        .body_len(rng.gen_range(profile.body_len.0..=profile.body_len.1))
                        .meta("source", profile.name.clone())
                        .build()
                };
                recent.push(item.clone());
                if recent.len() > 20 {
                    recent.remove(0);
                }
                events.push(PublishEvent { at_us: t_us, item });
                seq += 1;
            }
        }
        events.sort_by_key(|e| e.at_us);
        events
    }
}

/// Samples a subscriber's interest set: `n_cats` categories Zipf-weighted
/// over the full category list plus a matching set of subject prefixes.
///
/// Returns `(categories, subject_keys)` where the subject keys are in the
/// same `CAT.topic` space [`TraceGenerator::generate`] produces.
pub fn sample_interests(
    rng: &mut SmallRng,
    n_cats: usize,
    topics_per_category: u16,
) -> (Vec<Category>, Vec<Subject>) {
    let zipf = Zipf::new(Category::ALL.len(), 0.8);
    let topic_zipf = Zipf::new(topics_per_category.max(1) as usize, 1.1);
    let mut cats = Vec::new();
    while cats.len() < n_cats.min(Category::ALL.len()) {
        let c = Category::ALL[zipf.sample(rng)];
        if !cats.contains(&c) {
            cats.push(c);
        }
    }
    let subjects = cats
        .iter()
        .map(|c| {
            if rng.gen::<f64>() < 0.5 {
                // Broad subscription: the whole category subtree.
                Subject::new(vec![u16::from(c.bit()) + 1])
            } else {
                // Narrow subscription: one topic.
                Subject::new(vec![u16::from(c.bit()) + 1, topic_zipf.sample(rng) as u16 + 1])
            }
        })
        .collect();
    (cats, subjects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(50, 1.0);
        let mut r = rng(1);
        let mut counts = [0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut r = rng(2);
        let mut counts = vec![0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn trace_is_sorted_and_within_horizon() {
        let g = TraceGenerator::new(vec![
            PublisherProfile::slashdot(PublisherId(0)),
            PublisherProfile::reuters(PublisherId(1)),
        ]);
        let horizon = 86_400_000_000; // one day
        let events = g.generate(&mut rng(3), horizon);
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(events.iter().all(|e| e.at_us < horizon));
    }

    #[test]
    fn diurnal_intensity_peaks_daytime_and_averages_one() {
        let noon_ish = diurnal_intensity(14 * 3_600_000_000);
        let night = diurnal_intensity(2 * 3_600_000_000);
        assert!(noon_ish > 1.7, "peak {noon_ish}");
        assert!(night < 0.3, "trough {night}");
        let mean: f64 = (0..24).map(|h| diurnal_intensity(h * 3_600_000_000)).sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn diurnal_trace_concentrates_in_daytime_but_keeps_the_rate() {
        let mut profile = PublisherProfile::slashdot(PublisherId(0));
        profile.items_per_day = 200.0; // enough samples
        assert!(profile.diurnal);
        let g = TraceGenerator::new(vec![profile]);
        let days = 10u64;
        let events = g.generate(&mut rng(8), days * 86_400_000_000);
        let per_day = events.len() as f64 / days as f64;
        assert!((150.0..250.0).contains(&per_day), "rate {per_day}");
        let daytime = events
            .iter()
            .filter(|e| {
                let hour = e.at_us % 86_400_000_000 / 3_600_000_000;
                (8..20).contains(&hour)
            })
            .count();
        let frac = daytime as f64 / events.len() as f64;
        assert!(frac > 0.65, "daytime fraction {frac}");
    }

    #[test]
    fn trace_rates_roughly_match_profiles() {
        let g = TraceGenerator::new(vec![PublisherProfile::reuters(PublisherId(0))]);
        let events = g.generate(&mut rng(4), 10 * 86_400_000_000);
        let per_day = events.len() as f64 / 10.0;
        assert!((300.0..500.0).contains(&per_day), "rate {per_day}");
    }

    #[test]
    fn trace_is_deterministic() {
        let g = TraceGenerator::new(vec![PublisherProfile::slashdot(PublisherId(0))]);
        let a = g.generate(&mut rng(5), 86_400_000_000);
        let b = g.generate(&mut rng(5), 86_400_000_000);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.item == y.item && x.at_us == y.at_us));
    }

    #[test]
    fn revisions_link_to_recent_items() {
        let mut profile = PublisherProfile::reuters(PublisherId(2));
        profile.revision_prob = 0.9;
        let g = TraceGenerator::new(vec![profile]);
        let events = g.generate(&mut rng(6), 86_400_000_000);
        let revised = events.iter().filter(|e| e.item.revision > 0).count();
        assert!(revised > events.len() / 2);
        for e in events.iter().filter(|e| e.item.revision > 0) {
            assert!(e.item.supersedes.is_some());
        }
    }

    #[test]
    fn interests_unique_and_in_space() {
        let (cats, subs) = sample_interests(&mut rng(7), 3, 40);
        assert_eq!(cats.len(), 3);
        let mut dedup = cats.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        assert_eq!(subs.len(), 3);
        for s in &subs {
            assert!(s.depth() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate publisher ids")]
    fn duplicate_ids_rejected() {
        TraceGenerator::new(vec![
            PublisherProfile::slashdot(PublisherId(0)),
            PublisherProfile::reuters(PublisherId(0)),
        ]);
    }
}
