//! MIB rows — the "management information base" record each zone
//! contributes to its parent table.
//!
//! Paper §3: "At the leaf table, a row is assigned to a particular process
//! or user, which is allowed to update this row with attributes & values…
//! each leaf table contributing a read-only summary row to its parent
//! table."
//!
//! Rows are immutable once issued; replicas hold them behind `Arc` so a
//! 100 000-node simulation shares one copy of each row version system-wide.

use std::fmt;
use std::sync::Arc;

use crate::value::AttrValue;

/// Attribute name. `Arc<str>` so the (few, short) names are shared across
/// the many rows that carry them.
pub type AttrName = Arc<str>;

/// Version stamp of a row: origin issue time plus a per-origin counter.
///
/// Newer stamps win during gossip merges; comparison is lexicographic on
/// `(issued_us, version, origin)`, with `origin` only as a deterministic
/// tie-breaker between concurrent writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Stamp {
    /// Issue time at the origin, in simulated microseconds.
    pub issued_us: u64,
    /// Per-origin monotone counter.
    pub version: u64,
    /// Id of the agent that issued the row.
    pub origin: u32,
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}v{}by{}", self.issued_us, self.version, self.origin)
    }
}

/// Attribute-name prefix under which dynamic aggregation programs (mobile
/// code) travel through the hierarchy.
pub const AGG_ATTR_PREFIX: &str = "sys$agg:";

/// One immutable row version.
///
/// The attribute list sits behind its own `Arc`, separate from the
/// `Arc<Mib>` replicas share: a re-stamped heartbeat of an unchanged row
/// ([`Mib::restamped`]) is a new `Mib` (new stamp) sharing the old
/// attribute allocation, so the steady-state gossip path neither copies
/// attribute values nor compares them ([`Mib::same_attrs`] short-circuits
/// on pointer identity).
#[derive(Debug, Clone, PartialEq)]
pub struct Mib {
    /// Version stamp used for newest-wins merging.
    pub stamp: Stamp,
    /// Attributes, sorted by name.
    attrs: Arc<[(AttrName, AttrValue)]>,
    /// Precomputed [`Mib::wire_size`]; rows are immutable, and traffic
    /// accounting reads the size of every row of every gossip batch.
    wire: u32,
    /// Whether any attribute name starts with [`AGG_ATTR_PREFIX`] —
    /// precomputed so the merge path can test mobile-code carriage without a
    /// per-row string search.
    carries_agg: bool,
    /// Stamp-independent FNV hash of the sorted attribute list, precomputed
    /// at construction and shared by [`Mib::restamped`]. Delta gossip
    /// advertises it in digests so peers can recognize a heartbeat re-stamp
    /// of content they already hold.
    chash: u64,
}

impl Mib {
    /// Builds a row from attribute pairs (sorted internally; later
    /// duplicates win).
    ///
    /// Input that is already sorted and duplicate-free — what
    /// [`MibBuilder::build`] and the agent's own-row refresh produce every
    /// gossip round — is taken as-is without the O(n log n) pass.
    pub fn new(stamp: Stamp, mut attrs: Vec<(AttrName, AttrValue)>) -> Self {
        if attrs.windows(2).any(|w| w[0].0 >= w[1].0) {
            attrs.sort_by(|a, b| a.0.cmp(&b.0));
            attrs.dedup_by(|later, earlier| {
                if later.0 == earlier.0 {
                    // `dedup_by` removes `later` when true; keep the later
                    // value by moving it into the kept slot first.
                    std::mem::swap(&mut earlier.1, &mut later.1);
                    true
                } else {
                    false
                }
            });
        }
        let wire = 24 + attrs.iter().map(|(n, v)| n.len() + 1 + v.wire_size()).sum::<usize>();
        let at = attrs.partition_point(|(n, _)| n.as_ref() < AGG_ATTR_PREFIX);
        let carries_agg = attrs.get(at).is_some_and(|(n, _)| n.starts_with(AGG_ATTR_PREFIX));
        let chash = content_hash(&attrs);
        Mib { stamp, attrs: attrs.into(), wire: wire as u32, carries_agg, chash }
    }

    /// A fresh row version carrying the same attributes under a new stamp —
    /// the steady-state heartbeat. Shares the attribute allocation (two
    /// refcount bumps, no copy, no wire-size recomputation), which is also
    /// what lets [`Mib::same_attrs`] recognize the re-issue by pointer
    /// identity on the receiving replica.
    pub fn restamped(&self, stamp: Stamp) -> Mib {
        Mib {
            stamp,
            attrs: Arc::clone(&self.attrs),
            wire: self.wire,
            carries_agg: self.carries_agg,
            chash: self.chash,
        }
    }

    /// Stamp-independent hash of the attribute list (precomputed). Two rows
    /// with equal hashes are treated by delta gossip as carrying the same
    /// values, so a peer can adopt a newer stamp without pulling the row.
    pub fn content_hash(&self) -> u64 {
        self.chash
    }

    /// Attribute lookup.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.binary_search_by(|(n, _)| n.as_ref().cmp(name)).ok().map(|i| &self.attrs[i].1)
    }

    /// All attributes, sorted by name.
    pub fn attrs(&self) -> &[(AttrName, AttrValue)] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the row carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Approximate serialized size in bytes (precomputed at construction).
    pub fn wire_size(&self) -> usize {
        self.wire as usize
    }

    /// True when `self` should replace `other` in a merge.
    pub fn newer_than(&self, other: &Mib) -> bool {
        self.stamp > other.stamp
    }

    /// True when the row carries a `sys$agg:` mobile-code attribute
    /// (precomputed at construction — the merge path tests every admitted
    /// row).
    pub fn carries_mobile_code(&self) -> bool {
        self.carries_agg
    }

    /// True when `other` carries exactly the same attributes (stamps may
    /// differ). Drives [`ZoneTable`](crate::ZoneTable) content generations:
    /// a re-stamped heartbeat of an unchanged row must not invalidate
    /// value-derived caches. The precomputed wire size acts as a cheap
    /// first-pass filter, and attribute lists shared via [`Mib::restamped`]
    /// are recognized by pointer identity without touching the values.
    pub fn same_attrs(&self, other: &Mib) -> bool {
        Arc::ptr_eq(&self.attrs, &other.attrs)
            || (self.wire == other.wire && self.attrs == other.attrs)
    }

    /// True only when `other` *shares this row's attribute allocation* (the
    /// [`Mib::restamped`] heartbeat path). Unlike [`Mib::same_attrs`] this
    /// never falls back to a value comparison, so it is a single pointer
    /// test — suitable for per-row hot paths that memoize attribute reads.
    pub fn shares_attrs(&self, other: &Mib) -> bool {
        Arc::ptr_eq(&self.attrs, &other.attrs)
    }
}

/// FNV-1a over the sorted attribute list: names, type tags and canonical
/// value bytes. Deterministic across processes (no pointer or layout
/// input), allocation-free, and independent of the stamp by construction.
fn content_hash(attrs: &[(AttrName, AttrValue)]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let feed = |bytes: &[u8], h: &mut u64| {
        for &b in bytes {
            *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for (name, value) in attrs {
        feed(name.as_bytes(), &mut h);
        feed(&[0xFF], &mut h); // name/value separator
        match value {
            AttrValue::Int(i) => feed(&i.to_le_bytes(), &mut h),
            AttrValue::Float(f) => feed(&f.to_bits().to_le_bytes(), &mut h),
            AttrValue::Str(s) => feed(s.as_bytes(), &mut h),
            AttrValue::Bool(b) => feed(&[u8::from(*b)], &mut h),
            AttrValue::Set(s) => {
                for v in s {
                    feed(&v.to_le_bytes(), &mut h);
                }
            }
            AttrValue::Bits(b) => {
                feed(&(b.len() as u64).to_le_bytes(), &mut h);
                for i in b.ones() {
                    feed(&(i as u64).to_le_bytes(), &mut h);
                }
            }
            AttrValue::Bytes(v) => feed(v, &mut h),
        }
        // Type tag keeps e.g. Int(0) and Bool(false) encodings distinct.
        feed(value.type_name().as_bytes(), &mut h);
        feed(&[0xFE], &mut h); // attribute separator
    }
    h
}

/// Incremental builder for rows, reusing interned attribute names.
///
/// Attributes are kept sorted by name as they are set, so [`MibBuilder::build`]
/// hands [`Mib::new`] a pre-sorted, duplicate-free vector and the sort+dedup
/// pass is skipped on the hot path.
///
/// ```
/// use astrolabe::{MibBuilder, Stamp, AttrValue};
/// let row = MibBuilder::new()
///     .attr("load", 0.25)
///     .attr("id", 7i64)
///     .build(Stamp { issued_us: 10, version: 1, origin: 7 });
/// assert_eq!(row.get("id"), Some(&AttrValue::Int(7)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MibBuilder {
    attrs: Vec<(AttrName, AttrValue)>,
}

impl MibBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        MibBuilder::default()
    }

    /// Adds an attribute (replaces an earlier one with the same name).
    #[must_use]
    pub fn attr(mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Non-consuming variant of [`MibBuilder::attr`].
    pub fn set(&mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) {
        let name = name.into();
        match self.attrs.binary_search_by(|(n, _)| n.as_ref().cmp(name.as_ref())) {
            Ok(i) => self.attrs[i].1 = value.into(),
            Err(i) => self.attrs.insert(i, (name, value.into())),
        }
    }

    /// Value previously set for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.binary_search_by(|(n, _)| n.as_ref().cmp(name)).ok().map(|i| &self.attrs[i].1)
    }

    /// Removes every attribute whose name starts with `prefix`, returning
    /// how many were dropped. Used by hosts on cold restart to retract
    /// volatile advertisements (e.g. anti-entropy digests) that no longer
    /// describe any state the process holds.
    pub fn remove_prefix(&mut self, prefix: &str) -> usize {
        let before = self.attrs.len();
        self.attrs.retain(|(n, _)| !n.as_ref().starts_with(prefix));
        before - self.attrs.len()
    }

    /// Finishes the row with the given stamp.
    pub fn build(self, stamp: Stamp) -> Mib {
        Mib::new(stamp, self.attrs)
    }

    /// The accumulated attributes, sorted and duplicate-free — for callers
    /// that cache the attribute list and stamp it repeatedly (see the
    /// agent's aggregation cache).
    pub fn into_attrs(self) -> Vec<(AttrName, AttrValue)> {
        self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(t: u64, v: u64, o: u32) -> Stamp {
        Stamp { issued_us: t, version: v, origin: o }
    }

    #[test]
    fn stamp_ordering() {
        assert!(stamp(2, 0, 0) > stamp(1, 9, 9));
        assert!(stamp(1, 2, 0) > stamp(1, 1, 9));
        assert!(stamp(1, 1, 1) > stamp(1, 1, 0));
        assert_eq!(stamp(1, 1, 1), stamp(1, 1, 1));
    }

    #[test]
    fn row_sorted_lookup() {
        let row = Mib::new(
            stamp(0, 0, 0),
            vec![(Arc::from("zeta"), AttrValue::Int(1)), (Arc::from("alpha"), AttrValue::Int(2))],
        );
        assert_eq!(row.get("alpha"), Some(&AttrValue::Int(2)));
        assert_eq!(row.get("zeta"), Some(&AttrValue::Int(1)));
        assert_eq!(row.get("mid"), None);
        assert_eq!(row.attrs()[0].0.as_ref(), "alpha");
    }

    #[test]
    fn duplicate_names_later_wins() {
        let row = Mib::new(
            stamp(0, 0, 0),
            vec![(Arc::from("x"), AttrValue::Int(1)), (Arc::from("x"), AttrValue::Int(2))],
        );
        assert_eq!(row.len(), 1);
        assert_eq!(row.get("x"), Some(&AttrValue::Int(2)));
    }

    #[test]
    fn builder_replaces() {
        let row =
            MibBuilder::new().attr("a", 1i64).attr("a", 2i64).attr("b", "s").build(stamp(5, 1, 3));
        assert_eq!(row.get("a"), Some(&AttrValue::Int(2)));
        assert_eq!(row.len(), 2);
        assert_eq!(row.stamp, stamp(5, 1, 3));
    }

    #[test]
    fn newer_than_follows_stamp() {
        let a = MibBuilder::new().build(stamp(1, 0, 0));
        let b = MibBuilder::new().build(stamp(2, 0, 0));
        assert!(b.newer_than(&a));
        assert!(!a.newer_than(&b));
        assert!(!a.newer_than(&a));
    }

    #[test]
    fn content_hash_ignores_stamp_tracks_values() {
        let a = MibBuilder::new().attr("load", 0.5).attr("id", 7i64).build(stamp(1, 0, 0));
        let b = MibBuilder::new().attr("id", 7i64).attr("load", 0.5).build(stamp(9, 4, 2));
        assert_eq!(a.content_hash(), b.content_hash(), "order/stamp independent");
        assert_eq!(a.restamped(stamp(3, 0, 0)).content_hash(), a.content_hash());
        let c = MibBuilder::new().attr("load", 0.75).attr("id", 7i64).build(stamp(1, 0, 0));
        assert_ne!(a.content_hash(), c.content_hash());
        // Same encoded bytes under different types must not collide.
        let i = MibBuilder::new().attr("x", 0i64).build(stamp(0, 0, 0));
        let f = MibBuilder::new().attr("x", 0.0).build(stamp(0, 0, 0));
        assert_ne!(i.content_hash(), f.content_hash());
    }

    #[test]
    fn wire_size_grows_with_attrs() {
        let small = MibBuilder::new().build(stamp(0, 0, 0));
        let big =
            MibBuilder::new().attr("subs", AttrValue::Bytes(vec![0; 128])).build(stamp(0, 0, 0));
        assert!(big.wire_size() > small.wire_size() + 128);
    }
}
