//! Simulated certificates.
//!
//! Paper §3 property 3: Astrolabe is "secure, through pervasive use of
//! certificates", and §8 requires publisher authentication. Real Astrolabe
//! used public-key certificates; this reproduction substitutes keyed-hash
//! MACs plus an in-simulation [`TrustRegistry`] standing in for the PKI
//! (see DESIGN.md, substitution 2). All the *flows* are preserved —
//! issuance by an authority, signing of rows and news items, verification,
//! and rejection of forged or tampered data — without a crypto dependency;
//! only the mathematical hardness is simulated.

use std::collections::HashMap;
use std::fmt;

use filters::fnv1a_seeded;
use simnet::splitmix64;

/// Public identifier of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u64);

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{:016x}", self.0)
    }
}

/// A signing key (the holder's secret half).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecretKey {
    /// Public identifier.
    pub id: KeyId,
    secret: u64,
}

impl SecretKey {
    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(fnv1a_seeded(msg, self.secret))
    }
}

/// A detached signature over a byte string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub u64);

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:016x}", self.0)
    }
}

/// A certificate binding a subject name and claims to a key, signed by the
/// registry's certification authority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject name (e.g. `publisher:reuters`).
    pub subject: String,
    /// The subject's key.
    pub key: KeyId,
    /// Free-form claims, e.g. allowed publish zones or rate limits.
    pub claims: Vec<(String, String)>,
    /// CA signature over the canonical encoding.
    pub ca_sig: Signature,
}

impl Certificate {
    fn canonical_bytes(subject: &str, key: KeyId, claims: &[(String, String)]) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(subject.as_bytes());
        out.push(0);
        out.extend_from_slice(&key.0.to_le_bytes());
        for (k, v) in claims {
            out.extend_from_slice(k.as_bytes());
            out.push(b'=');
            out.extend_from_slice(v.as_bytes());
            out.push(0);
        }
        out
    }

    /// Value of the claim named `name`.
    pub fn claim(&self, name: &str) -> Option<&str> {
        self.claims.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// A signed revocation/rotation record: the registry root declares one of
/// a subject's key-epochs revoked and endorses a successor certificate.
///
/// The record is self-contained — any node holding the CA's public key can
/// verify it offline — so it can propagate epidemically as a `sys$` MIB
/// row without consulting the registry. Freshness is fenced by `serial`:
/// a record only supersedes one with a strictly smaller serial, so a
/// replayed (older) revocation can never un-revoke a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationRecord {
    /// Subject whose key is rotated (e.g. `publisher:reuters`).
    pub subject: String,
    /// The revoked key.
    pub revoked: KeyId,
    /// Key-epoch of the revoked key.
    pub revoked_epoch: u32,
    /// Monotone rotation serial per subject; higher wins.
    pub serial: u32,
    /// CA-endorsed successor certificate (next key-epoch).
    pub successor: Certificate,
    /// CA signature over the canonical encoding of all fields above.
    pub ca_sig: Signature,
}

impl RotationRecord {
    fn canonical_bytes(
        subject: &str,
        revoked: KeyId,
        revoked_epoch: u32,
        serial: u32,
        successor: &Certificate,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(b"rot\0");
        out.extend_from_slice(subject.as_bytes());
        out.push(0);
        out.extend_from_slice(&revoked.0.to_le_bytes());
        out.extend_from_slice(&revoked_epoch.to_le_bytes());
        out.extend_from_slice(&serial.to_le_bytes());
        out.extend_from_slice(&Certificate::canonical_bytes(
            &successor.subject,
            successor.key,
            &successor.claims,
        ));
        out.extend_from_slice(&successor.ca_sig.0.to_le_bytes());
        out
    }

    /// Encodes the record as a printable string suitable for a MIB
    /// attribute value. Fields are `|`-separated; certificate claims are
    /// `;`-separated `k=v` pairs (none of the characters appear in the
    /// controlled subject/claim vocabulary).
    pub fn encode(&self) -> String {
        let claims: Vec<String> =
            self.successor.claims.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!(
            "rot1|{}|{:016x}|{}|{}|{}|{:016x}|{}|{:016x}|{:016x}",
            self.subject,
            self.revoked.0,
            self.revoked_epoch,
            self.serial,
            self.successor.subject,
            self.successor.key.0,
            claims.join(";"),
            self.successor.ca_sig.0,
            self.ca_sig.0,
        )
    }

    /// Decodes a record previously produced by [`RotationRecord::encode`].
    /// Returns `None` on any structural mismatch; signature validity is
    /// checked separately via [`TrustRegistry::verify_rotation`].
    pub fn decode(s: &str) -> Option<RotationRecord> {
        let parts: Vec<&str> = s.split('|').collect();
        if parts.len() != 10 || parts[0] != "rot1" {
            return None;
        }
        let revoked = KeyId(u64::from_str_radix(parts[2], 16).ok()?);
        let revoked_epoch: u32 = parts[3].parse().ok()?;
        let serial: u32 = parts[4].parse().ok()?;
        let succ_key = KeyId(u64::from_str_radix(parts[6], 16).ok()?);
        let mut claims = Vec::new();
        if !parts[7].is_empty() {
            for pair in parts[7].split(';') {
                let (k, v) = pair.split_once('=')?;
                claims.push((k.to_string(), v.to_string()));
            }
        }
        let succ_sig = Signature(u64::from_str_radix(parts[8], 16).ok()?);
        let ca_sig = Signature(u64::from_str_radix(parts[9], 16).ok()?);
        Some(RotationRecord {
            subject: parts[1].to_string(),
            revoked,
            revoked_epoch,
            serial,
            successor: Certificate {
                subject: parts[5].to_string(),
                key: succ_key,
                claims,
                ca_sig: succ_sig,
            },
            ca_sig,
        })
    }
}

/// The deployment's trust anchor: issues keys and certificates, verifies
/// signatures. Every node holds (a logical copy of) it, playing the role a
/// well-known CA public key plays in a real PKI.
#[derive(Debug, Clone)]
pub struct TrustRegistry {
    secrets: HashMap<KeyId, u64>,
    ca: SecretKey,
    counter: u64,
    seed: u64,
}

impl TrustRegistry {
    /// Creates a registry with a fresh CA key derived from `seed`.
    pub fn new(seed: u64) -> Self {
        let ca_secret = splitmix64(seed ^ 0xCA);
        let ca = SecretKey { id: KeyId(splitmix64(ca_secret)), secret: ca_secret };
        let mut secrets = HashMap::new();
        secrets.insert(ca.id, ca.secret);
        TrustRegistry { secrets, ca, counter: 0, seed }
    }

    /// The CA's public key id.
    pub fn ca_key(&self) -> KeyId {
        self.ca.id
    }

    /// Issues a fresh key pair and registers it for verification.
    pub fn issue_key(&mut self) -> SecretKey {
        self.counter += 1;
        let secret = splitmix64(self.seed ^ splitmix64(self.counter));
        let key = SecretKey { id: KeyId(splitmix64(secret ^ 0x5EC)), secret };
        self.secrets.insert(key.id, secret);
        key
    }

    /// Verifies `sig` over `msg` by the holder of `key`.
    pub fn verify(&self, key: KeyId, msg: &[u8], sig: Signature) -> bool {
        match self.secrets.get(&key) {
            Some(&secret) => fnv1a_seeded(msg, secret) == sig.0,
            None => false,
        }
    }

    /// Issues a CA-signed certificate for `subject` with the given claims.
    pub fn issue_certificate(
        &mut self,
        subject: impl Into<String>,
        claims: Vec<(String, String)>,
    ) -> (Certificate, SecretKey) {
        let subject = subject.into();
        let key = self.issue_key();
        let bytes = Certificate::canonical_bytes(&subject, key.id, &claims);
        let ca_sig = self.ca.sign(&bytes);
        (Certificate { subject, key: key.id, claims, ca_sig }, key)
    }

    /// Verifies a certificate's CA signature.
    pub fn verify_certificate(&self, cert: &Certificate) -> bool {
        let bytes = Certificate::canonical_bytes(&cert.subject, cert.key, &cert.claims);
        self.verify(self.ca.id, &bytes, cert.ca_sig)
    }

    /// Verifies `sig` over `msg` under a certificate in one step: the
    /// certificate must chain to the CA *and* the signature must verify
    /// under the certificate's key. A valid signature paired with a forged
    /// certificate (or vice versa) fails.
    pub fn verify_with_certificate(&self, cert: &Certificate, msg: &[u8], sig: Signature) -> bool {
        self.verify_certificate(cert) && self.verify(cert.key, msg, sig)
    }

    /// Hands the secret half of a registered key to the caller — the
    /// simulated equivalent of key theft. Only the fault injector calls
    /// this; defenses never do.
    pub fn exfiltrate_key(&self, key: KeyId) -> Option<SecretKey> {
        self.secrets.get(&key).map(|&secret| SecretKey { id: key, secret })
    }

    /// Issues a signed rotation record revoking `revoked` (epoch
    /// `revoked_epoch`) for `subject` and endorsing a fresh successor key
    /// at epoch `revoked_epoch + 1`. The successor certificate carries the
    /// subject's `claims` plus a `key-epoch` claim.
    pub fn issue_rotation(
        &mut self,
        subject: impl Into<String>,
        revoked: KeyId,
        revoked_epoch: u32,
        serial: u32,
        mut claims: Vec<(String, String)>,
    ) -> (RotationRecord, SecretKey) {
        let subject = subject.into();
        claims.push(("key-epoch".into(), (revoked_epoch + 1).to_string()));
        let (successor, key) = self.issue_certificate(subject.clone(), claims);
        let bytes =
            RotationRecord::canonical_bytes(&subject, revoked, revoked_epoch, serial, &successor);
        let ca_sig = self.ca.sign(&bytes);
        (RotationRecord { subject, revoked, revoked_epoch, serial, successor, ca_sig }, key)
    }

    /// Verifies a rotation record end to end: the CA signature over the
    /// record *and* the embedded successor certificate's own CA chain.
    pub fn verify_rotation(&self, rot: &RotationRecord) -> bool {
        let bytes = RotationRecord::canonical_bytes(
            &rot.subject,
            rot.revoked,
            rot.revoked_epoch,
            rot.serial,
            &rot.successor,
        );
        self.verify(self.ca.id, &bytes, rot.ca_sig)
            && self.verify_certificate(&rot.successor)
            && rot.successor.subject == rot.subject
    }

    /// Endorses node `id` for admission: a CA signature over the identity,
    /// published by the joiner as its join ticket.
    pub fn endorse_join(&self, id: u32) -> Signature {
        let mut msg = *b"join\0\0\0\0\0";
        msg[5..9].copy_from_slice(&id.to_le_bytes());
        self.ca.sign(&msg)
    }

    /// Verifies a join ticket for node `id`.
    pub fn verify_join(&self, id: u32, sig: Signature) -> bool {
        let mut msg = *b"join\0\0\0\0\0";
        msg[5..9].copy_from_slice(&id.to_le_bytes());
        self.verify(self.ca.id, &msg, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut reg = TrustRegistry::new(7);
        let key = reg.issue_key();
        let sig = key.sign(b"headline");
        assert!(reg.verify(key.id, b"headline", sig));
        assert!(!reg.verify(key.id, b"tampered", sig));
    }

    #[test]
    fn unknown_key_rejected() {
        let reg = TrustRegistry::new(7);
        assert!(!reg.verify(KeyId(42), b"x", Signature(0)));
    }

    #[test]
    fn forged_signature_rejected() {
        let mut reg = TrustRegistry::new(7);
        let key = reg.issue_key();
        let other = reg.issue_key();
        let sig = other.sign(b"msg"); // signed with the wrong key
        assert!(!reg.verify(key.id, b"msg", sig));
    }

    #[test]
    fn certificate_roundtrip_and_tamper() {
        let mut reg = TrustRegistry::new(9);
        let (cert, _key) = reg.issue_certificate(
            "publisher:reuters",
            vec![("zones".into(), "/".into()), ("rate".into(), "100".into())],
        );
        assert!(reg.verify_certificate(&cert));
        assert_eq!(cert.claim("rate"), Some("100"));
        assert_eq!(cert.claim("absent"), None);

        let mut tampered = cert.clone();
        tampered.claims[1].1 = "100000".into();
        assert!(!reg.verify_certificate(&tampered));

        let mut resubject = cert;
        resubject.subject = "publisher:mallory".into();
        assert!(!reg.verify_certificate(&resubject));
    }

    #[test]
    fn verify_with_certificate_needs_both_halves() {
        let mut reg = TrustRegistry::new(9);
        let (cert, key) = reg.issue_certificate("publisher:reuters", vec![]);
        let sig = key.sign(b"bulletin");
        assert!(reg.verify_with_certificate(&cert, b"bulletin", sig));
        assert!(!reg.verify_with_certificate(&cert, b"tampered", sig));
        let mut forged = cert.clone();
        forged.subject = "publisher:mallory".into();
        assert!(!reg.verify_with_certificate(&forged, b"bulletin", sig));
        let (other_cert, _) = reg.issue_certificate("publisher:other", vec![]);
        assert!(!reg.verify_with_certificate(&other_cert, b"bulletin", sig));
    }

    #[test]
    fn rotation_record_encode_decode_roundtrip() {
        let mut reg = TrustRegistry::new(11);
        let (cert, _key) = reg.issue_certificate(
            "publisher:reuters",
            vec![("zones".into(), "/".into()), ("key-epoch".into(), "1".into())],
        );
        let (rot, _succ) = reg.issue_rotation(
            "publisher:reuters",
            cert.key,
            1,
            1,
            vec![("zones".into(), "/".into())],
        );
        assert!(reg.verify_rotation(&rot));
        assert_eq!(rot.successor.claim("key-epoch"), Some("2"));

        let wire = rot.encode();
        let back = RotationRecord::decode(&wire).expect("decodes");
        assert_eq!(back, rot);
        assert!(reg.verify_rotation(&back));

        assert!(RotationRecord::decode("rot1|short").is_none());
        assert!(RotationRecord::decode(&wire.replace("rot1", "rot9")).is_none());
    }

    #[test]
    fn rotation_record_tamper_rejected() {
        let mut reg = TrustRegistry::new(12);
        let (cert, _key) = reg.issue_certificate("publisher:bbc", vec![]);
        let (rot, _succ) = reg.issue_rotation("publisher:bbc", cert.key, 1, 3, vec![]);

        // Bumping the serial (replay-protection field) breaks the CA sig.
        let mut stale = rot.clone();
        stale.serial = 99;
        assert!(!reg.verify_rotation(&stale));

        // Swapping in an attacker's "successor" cert breaks the chain even
        // if the outer signature were somehow accepted.
        let (mallory_cert, _) = reg.issue_certificate("publisher:mallory", vec![]);
        let mut hijacked = rot.clone();
        hijacked.successor = mallory_cert;
        assert!(!reg.verify_rotation(&hijacked));

        // A successor with a different subject is refused even when both
        // signatures individually verify.
        let (other_rot, _) = reg.issue_rotation("publisher:other", cert.key, 1, 3, vec![]);
        let mut cross = rot;
        cross.successor = other_rot.successor;
        assert!(!reg.verify_rotation(&cross));
    }

    #[test]
    fn exfiltrated_key_signs_like_the_original() {
        let mut reg = TrustRegistry::new(13);
        let key = reg.issue_key();
        let stolen = reg.exfiltrate_key(key.id).expect("registered");
        assert_eq!(stolen, key);
        assert!(reg.verify(key.id, b"forged", stolen.sign(b"forged")));
        assert!(reg.exfiltrate_key(KeyId(0xDEAD)).is_none());
    }

    #[test]
    fn join_tickets_bind_the_identity() {
        let reg = TrustRegistry::new(14);
        let t7 = reg.endorse_join(7);
        assert!(reg.verify_join(7, t7));
        assert!(!reg.verify_join(8, t7));
        assert!(!reg.verify_join(7, Signature(t7.0 ^ 1)));
        assert!(!TrustRegistry::new(15).verify_join(7, t7));
    }

    #[test]
    fn keys_are_distinct_and_deterministic() {
        let mut a = TrustRegistry::new(1);
        let mut b = TrustRegistry::new(1);
        assert_eq!(a.issue_key(), b.issue_key());
        assert_ne!(a.issue_key(), a.issue_key());
        assert_ne!(TrustRegistry::new(2).ca_key(), TrustRegistry::new(3).ca_key());
    }
}
