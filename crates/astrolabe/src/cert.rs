//! Simulated certificates.
//!
//! Paper §3 property 3: Astrolabe is "secure, through pervasive use of
//! certificates", and §8 requires publisher authentication. Real Astrolabe
//! used public-key certificates; this reproduction substitutes keyed-hash
//! MACs plus an in-simulation [`TrustRegistry`] standing in for the PKI
//! (see DESIGN.md, substitution 2). All the *flows* are preserved —
//! issuance by an authority, signing of rows and news items, verification,
//! and rejection of forged or tampered data — without a crypto dependency;
//! only the mathematical hardness is simulated.

use std::collections::HashMap;
use std::fmt;

use filters::fnv1a_seeded;
use simnet::splitmix64;

/// Public identifier of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u64);

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{:016x}", self.0)
    }
}

/// A signing key (the holder's secret half).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecretKey {
    /// Public identifier.
    pub id: KeyId,
    secret: u64,
}

impl SecretKey {
    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(fnv1a_seeded(msg, self.secret))
    }
}

/// A detached signature over a byte string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub u64);

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:016x}", self.0)
    }
}

/// A certificate binding a subject name and claims to a key, signed by the
/// registry's certification authority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject name (e.g. `publisher:reuters`).
    pub subject: String,
    /// The subject's key.
    pub key: KeyId,
    /// Free-form claims, e.g. allowed publish zones or rate limits.
    pub claims: Vec<(String, String)>,
    /// CA signature over the canonical encoding.
    pub ca_sig: Signature,
}

impl Certificate {
    fn canonical_bytes(subject: &str, key: KeyId, claims: &[(String, String)]) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(subject.as_bytes());
        out.push(0);
        out.extend_from_slice(&key.0.to_le_bytes());
        for (k, v) in claims {
            out.extend_from_slice(k.as_bytes());
            out.push(b'=');
            out.extend_from_slice(v.as_bytes());
            out.push(0);
        }
        out
    }

    /// Value of the claim named `name`.
    pub fn claim(&self, name: &str) -> Option<&str> {
        self.claims.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// The deployment's trust anchor: issues keys and certificates, verifies
/// signatures. Every node holds (a logical copy of) it, playing the role a
/// well-known CA public key plays in a real PKI.
#[derive(Debug, Clone)]
pub struct TrustRegistry {
    secrets: HashMap<KeyId, u64>,
    ca: SecretKey,
    counter: u64,
    seed: u64,
}

impl TrustRegistry {
    /// Creates a registry with a fresh CA key derived from `seed`.
    pub fn new(seed: u64) -> Self {
        let ca_secret = splitmix64(seed ^ 0xCA);
        let ca = SecretKey { id: KeyId(splitmix64(ca_secret)), secret: ca_secret };
        let mut secrets = HashMap::new();
        secrets.insert(ca.id, ca.secret);
        TrustRegistry { secrets, ca, counter: 0, seed }
    }

    /// The CA's public key id.
    pub fn ca_key(&self) -> KeyId {
        self.ca.id
    }

    /// Issues a fresh key pair and registers it for verification.
    pub fn issue_key(&mut self) -> SecretKey {
        self.counter += 1;
        let secret = splitmix64(self.seed ^ splitmix64(self.counter));
        let key = SecretKey { id: KeyId(splitmix64(secret ^ 0x5EC)), secret };
        self.secrets.insert(key.id, secret);
        key
    }

    /// Verifies `sig` over `msg` by the holder of `key`.
    pub fn verify(&self, key: KeyId, msg: &[u8], sig: Signature) -> bool {
        match self.secrets.get(&key) {
            Some(&secret) => fnv1a_seeded(msg, secret) == sig.0,
            None => false,
        }
    }

    /// Issues a CA-signed certificate for `subject` with the given claims.
    pub fn issue_certificate(
        &mut self,
        subject: impl Into<String>,
        claims: Vec<(String, String)>,
    ) -> (Certificate, SecretKey) {
        let subject = subject.into();
        let key = self.issue_key();
        let bytes = Certificate::canonical_bytes(&subject, key.id, &claims);
        let ca_sig = self.ca.sign(&bytes);
        (Certificate { subject, key: key.id, claims, ca_sig }, key)
    }

    /// Verifies a certificate's CA signature.
    pub fn verify_certificate(&self, cert: &Certificate) -> bool {
        let bytes = Certificate::canonical_bytes(&cert.subject, cert.key, &cert.claims);
        self.verify(self.ca.id, &bytes, cert.ca_sig)
    }

    /// Verifies `sig` over `msg` under a certificate in one step: the
    /// certificate must chain to the CA *and* the signature must verify
    /// under the certificate's key. A valid signature paired with a forged
    /// certificate (or vice versa) fails.
    pub fn verify_with_certificate(&self, cert: &Certificate, msg: &[u8], sig: Signature) -> bool {
        self.verify_certificate(cert) && self.verify(cert.key, msg, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut reg = TrustRegistry::new(7);
        let key = reg.issue_key();
        let sig = key.sign(b"headline");
        assert!(reg.verify(key.id, b"headline", sig));
        assert!(!reg.verify(key.id, b"tampered", sig));
    }

    #[test]
    fn unknown_key_rejected() {
        let reg = TrustRegistry::new(7);
        assert!(!reg.verify(KeyId(42), b"x", Signature(0)));
    }

    #[test]
    fn forged_signature_rejected() {
        let mut reg = TrustRegistry::new(7);
        let key = reg.issue_key();
        let other = reg.issue_key();
        let sig = other.sign(b"msg"); // signed with the wrong key
        assert!(!reg.verify(key.id, b"msg", sig));
    }

    #[test]
    fn certificate_roundtrip_and_tamper() {
        let mut reg = TrustRegistry::new(9);
        let (cert, _key) = reg.issue_certificate(
            "publisher:reuters",
            vec![("zones".into(), "/".into()), ("rate".into(), "100".into())],
        );
        assert!(reg.verify_certificate(&cert));
        assert_eq!(cert.claim("rate"), Some("100"));
        assert_eq!(cert.claim("absent"), None);

        let mut tampered = cert.clone();
        tampered.claims[1].1 = "100000".into();
        assert!(!reg.verify_certificate(&tampered));

        let mut resubject = cert;
        resubject.subject = "publisher:mallory".into();
        assert!(!reg.verify_certificate(&resubject));
    }

    #[test]
    fn verify_with_certificate_needs_both_halves() {
        let mut reg = TrustRegistry::new(9);
        let (cert, key) = reg.issue_certificate("publisher:reuters", vec![]);
        let sig = key.sign(b"bulletin");
        assert!(reg.verify_with_certificate(&cert, b"bulletin", sig));
        assert!(!reg.verify_with_certificate(&cert, b"tampered", sig));
        let mut forged = cert.clone();
        forged.subject = "publisher:mallory".into();
        assert!(!reg.verify_with_certificate(&forged, b"bulletin", sig));
        let (other_cert, _) = reg.issue_certificate("publisher:other", vec![]);
        assert!(!reg.verify_with_certificate(&other_cert, b"bulletin", sig));
    }

    #[test]
    fn keys_are_distinct_and_deterministic() {
        let mut a = TrustRegistry::new(1);
        let mut b = TrustRegistry::new(1);
        assert_eq!(a.issue_key(), b.issue_key());
        assert_ne!(a.issue_key(), a.issue_key());
        assert_ne!(TrustRegistry::new(2).ca_key(), TrustRegistry::new(3).ca_key());
    }
}
