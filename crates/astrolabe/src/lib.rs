//! # astrolabe — the gossip-based hierarchical management substrate
//!
//! A from-scratch reimplementation of the Astrolabe system the NewsWire
//! paper builds on (paper §3–§5): a virtual hierarchy of zone tables,
//! maintained by an epidemic anti-entropy protocol, summarized upward by
//! SQL-like aggregation functions that are themselves mobile code, secured
//! by certificates, and eventually consistent.
//!
//! Layering:
//!
//! * [`ZoneId`] / [`ZoneLayout`] — the zone tree (≤64-row tables, several
//!   levels deep).
//! * [`AttrValue`], [`Mib`], [`ZoneTable`] — typed rows and replicated
//!   tables with newest-wins merging.
//! * [`parse_program`] / [`run_program`] — the aggregation-function
//!   language; [`parse_predicate`] / [`eval_predicate`] double as the
//!   subscriber SQL filter of §8.
//! * [`Agent`] — the per-node protocol state machine (sans-IO);
//!   [`AstroNode`] wraps it for `simnet`.
//! * [`TrustRegistry`] — simulated certificates (see DESIGN.md for the
//!   substitution rationale).
//! * [`mod@management`] — the §4 infrastructure-management usage: standard
//!   attributes, program set, and min/max operational guidance.
//!
//! # Example
//!
//! Run a 12-agent deployment to convergence on simulated time:
//!
//! ```
//! use astrolabe::{Agent, AstroNode, Config, ZoneLayout};
//! use simnet::{NetworkModel, NodeId, SimDuration, SimTime, Simulation};
//!
//! let n = 12;
//! let layout = ZoneLayout::new(n, 4);
//! let mut config = Config::standard();
//! config.branching = 4;
//! let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(20)), 7);
//! for i in 0..n {
//!     sim.add_node(AstroNode::new(Agent::new(i, &layout, config.clone(), vec![0])));
//! }
//! sim.run_until(SimTime::from_secs(60));
//! let total: i64 = sim
//!     .node(NodeId(3))
//!     .agent
//!     .root_table()
//!     .iter()
//!     .filter_map(|(_, row)| row.get("nmembers").and_then(|v| v.as_i64()))
//!     .sum();
//! assert_eq!(total, n as i64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
pub mod agg;
mod cert;
mod config;
pub mod management;
mod mib;
mod simnode;
mod table;
mod value;
mod zone;

pub use agent::{Agent, GossipMsg, TableDigest, TableRows, AGG_ATTR_PREFIX};
pub use agg::{
    eval_predicate, eval_scalar, parse_predicate, parse_program, run_program, AggProgram,
    EvalError, Expr, ParseAggError, RowSource,
};
pub use cert::{Certificate, KeyId, RotationRecord, SecretKey, Signature, TrustRegistry};
pub use config::{AggSpec, Config, DELTA_FULL_EXCHANGE_PERIOD};
pub use mib::{AttrName, Mib, MibBuilder, Stamp};
pub use simnode::AstroNode;
pub use table::{MergeOutcome, Row, RowDigest, ZoneTable};
pub use value::AttrValue;
pub use zone::{ZoneId, ZoneLayout, DEFAULT_BRANCHING};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn arb_stamp() -> impl Strategy<Value = Stamp> {
        (0u64..1000, 0u64..50, 0u32..8).prop_map(|(t, v, o)| Stamp {
            issued_us: t,
            version: v,
            origin: o,
        })
    }

    fn arb_row() -> impl Strategy<Value = (u16, Arc<Mib>)> {
        (0u16..8, arb_stamp(), 0i64..100).prop_map(|(label, stamp, x)| {
            (label, Arc::new(MibBuilder::new().attr("x", x).build(stamp)))
        })
    }

    proptest! {
        /// Table merge is order-independent: any permutation of the same row
        /// multiset converges to the same table (the property that makes
        /// anti-entropy gossip eventually consistent).
        #[test]
        fn merge_order_independent(rows in proptest::collection::vec(arb_row(), 0..24)) {
            let mut forward = ZoneTable::new(ZoneId::root());
            for (l, r) in &rows { forward.merge_row(*l, Arc::clone(r)); }
            let mut backward = ZoneTable::new(ZoneId::root());
            for (l, r) in rows.iter().rev() { backward.merge_row(*l, Arc::clone(r)); }
            let fw: Vec<(u16, Stamp)> = forward.iter().map(|(l, r)| (l, r.stamp)).collect();
            let bw: Vec<(u16, Stamp)> = backward.iter().map(|(l, r)| (l, r.stamp)).collect();
            prop_assert_eq!(fw, bw);
        }

        /// Merging is idempotent: replaying the same rows changes nothing.
        #[test]
        fn merge_idempotent(rows in proptest::collection::vec(arb_row(), 0..24)) {
            let mut t = ZoneTable::new(ZoneId::root());
            for (l, r) in &rows { t.merge_row(*l, Arc::clone(r)); }
            let before: Vec<(u16, Stamp)> = t.iter().map(|(l, r)| (l, r.stamp)).collect();
            for (l, r) in &rows {
                let changed = t.merge_row(*l, Arc::clone(r));
                prop_assert!(!changed);
            }
            let after: Vec<(u16, Stamp)> = t.iter().map(|(l, r)| (l, r.stamp)).collect();
            prop_assert_eq!(before, after);
        }

        /// After one digest/diff exchange both replicas agree exactly.
        #[test]
        fn diff_exchange_converges(
            a_rows in proptest::collection::vec(arb_row(), 0..16),
            b_rows in proptest::collection::vec(arb_row(), 0..16),
        ) {
            let mut a = ZoneTable::new(ZoneId::root());
            let mut b = ZoneTable::new(ZoneId::root());
            for (l, r) in &a_rows { a.merge_row(*l, Arc::clone(r)); }
            for (l, r) in &b_rows { b.merge_row(*l, Arc::clone(r)); }

            let (newer_at_a, _) = a.diff(&b.digest());
            let (newer_at_b, _) = b.diff(&a.digest());
            let from_a: Vec<(u16, Arc<Mib>)> =
                newer_at_a.iter().map(|&l| (l, Arc::clone(a.get(l).unwrap()))).collect();
            let from_b: Vec<(u16, Arc<Mib>)> =
                newer_at_b.iter().map(|&l| (l, Arc::clone(b.get(l).unwrap()))).collect();
            for (l, r) in from_b { a.merge_row(l, r); }
            for (l, r) in from_a { b.merge_row(l, r); }

            let fa: Vec<(u16, Stamp)> = a.iter().map(|(l, r)| (l, r.stamp)).collect();
            let fb: Vec<(u16, Stamp)> = b.iter().map(|(l, r)| (l, r.stamp)).collect();
            prop_assert_eq!(fa, fb);
        }

        /// Layout invariant: every agent maps into exactly one leaf zone at
        /// the layout's level, and the mapping round-trips.
        #[test]
        fn layout_total_and_injective(n in 1u32..2000, b in 2u16..16) {
            let l = ZoneLayout::new(n, b);
            let probe = [0, n / 3, n / 2, n.saturating_sub(1)];
            for &agent in probe.iter().filter(|&&a| a < n) {
                let z = l.leaf_zone(agent);
                prop_assert_eq!(z.depth(), l.levels());
                prop_assert_eq!(l.agent_at(&z, l.member_slot(agent)), Some(agent));
            }
        }

        /// The predicate parser never panics; valid parses display-roundtrip.
        #[test]
        fn predicate_parser_total(src in "[ -~]{0,48}") {
            if let Ok(e) = parse_predicate(&src) {
                let printed = e.to_string();
                let reparsed = parse_predicate(&printed).unwrap();
                prop_assert_eq!(reparsed.to_string(), printed);
            }
        }

        /// The whole parse→evaluate pipeline is total: whatever program text
        /// and row contents arrive (mobile code can come from anyone), the
        /// evaluator returns Ok/Err — it never panics. This is the safety
        /// property that lets agents run gossiped programs blindly.
        #[test]
        fn evaluator_total_on_arbitrary_programs(
            src in "(SELECT )?[A-Za-z0-9_$ (),.'*+<>=%/-]{0,64}",
            ints in proptest::collection::vec(("[a-z]{1,6}", -100i64..100), 0..6),
            strs in proptest::collection::vec(("[a-z]{1,6}", "[ -~]{0,10}"), 0..4),
        ) {
            if let Ok(prog) = parse_program(&src) {
                let rows: Vec<Mib> = (0..3)
                    .map(|i| {
                        let mut b = MibBuilder::new();
                        for (k, v) in &ints { b.set(k.as_str(), *v + i); }
                        for (k, v) in &strs { b.set(k.as_str(), v.as_str()); }
                        b.build(Stamp::default())
                    })
                    .collect();
                let _ = run_program(&prog, &rows); // must not panic
            }
        }
    }
}
