//! Infrastructure-management aggregations (paper §4).
//!
//! "One of the premier applications of Astrolabe technology is in the realm
//! of infrastructure management… Examples of infrastructure management
//! attributes that can easily be stored in Astrolabe include the
//! availability and configuration of local communication paths, as well as
//! performance measurements of local networking and computing elements. The
//! aggregation functions used in this setting would typically compute
//! aggregated availability and performance of network, and might offer
//! real-time guidance concerning which elements are in the min/max
//! category, and hence represent targets for new operations."
//!
//! This module packages that usage: the standard attribute names, the
//! management aggregation program set, and read-side helpers that turn a
//! node's replicated tables into min/max operational guidance.

use crate::agent::Agent;
use crate::config::AggSpec;
use crate::value::AttrValue;
use crate::zone::ZoneId;

/// Standard management attribute: one-minute load average.
pub const ATTR_LOAD: &str = "load";
/// Standard management attribute: available network paths.
pub const ATTR_PATHS: &str = "paths";
/// Standard management attribute: observed bandwidth (KB/s).
pub const ATTR_BANDWIDTH: &str = "bw";
/// Standard management attribute: 0/1 availability flag.
pub const ATTR_UP: &str = "up";

/// The §4 management program set: availability counts, performance
/// extremes, and path capacity, all written in the multi-level idiom
/// (alias = source attribute) so they compose up the tree.
pub fn management_aggregations() -> Vec<AggSpec> {
    vec![
        AggSpec::new("mgmt-up", format!("SELECT SUM({ATTR_UP}) AS {ATTR_UP}")),
        AggSpec::new("mgmt-paths", format!("SELECT SUM({ATTR_PATHS}) AS {ATTR_PATHS}")),
        AggSpec::new(
            "mgmt-bw",
            format!(
                "SELECT MIN({ATTR_BANDWIDTH}) AS {ATTR_BANDWIDTH}, MAX({ATTR_BANDWIDTH}) AS bw_max"
            ),
        ),
    ]
}

/// Operational guidance extracted from a node's replicated summaries:
/// which child of `zone` currently looks best/worst on an attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Guidance {
    /// Child with the smallest value, `(label, value)`.
    pub min: Option<(u16, f64)>,
    /// Child with the largest value, `(label, value)`.
    pub max: Option<(u16, f64)>,
}

/// Scans the agent's replica of `zone`'s table for the min/max children on
/// a numeric attribute (the §4 "targets for new operations" query).
/// Returns `None` when the agent does not replicate `zone`.
pub fn guidance(agent: &Agent, zone: &ZoneId, attr: &str) -> Option<Guidance> {
    let level = agent.level_of(zone)?;
    let mut min: Option<(u16, f64)> = None;
    let mut max: Option<(u16, f64)> = None;
    for (label, row) in agent.table(level).iter() {
        let Some(v) = row.get(attr).and_then(AttrValue::as_f64) else { continue };
        if min.is_none_or(|(_, m)| v < m) {
            min = Some((label, v));
        }
        if max.is_none_or(|(_, m)| v > m) {
            max = Some((label, v));
        }
    }
    Some(Guidance { min, max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::zone::ZoneLayout;
    use simnet::{fork, SimTime};

    /// Synchronous-round harness (same as the agent unit tests).
    fn converge(agents: &mut [Agent], rounds: usize) {
        let mut rng = fork(4, 0);
        for r in 1..=rounds {
            let now = SimTime::from_secs(r as u64);
            let mut inflight = Vec::new();
            for a in agents.iter_mut() {
                for (to, m) in a.on_tick(now, &mut rng) {
                    inflight.push((a.id(), to, m));
                }
            }
            while let Some((from, to, msg)) = inflight.pop() {
                if let Some(b) = agents.iter_mut().find(|a| a.id() == to) {
                    for (to2, m2) in b.on_message(now, from, msg, &mut rng) {
                        inflight.push((to, to2, m2));
                    }
                }
            }
        }
    }

    #[test]
    fn management_programs_compile() {
        for spec in management_aggregations() {
            crate::agg::parse_program(&spec.program)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn guidance_names_extreme_children() {
        let n = 16u32;
        let layout = ZoneLayout::new(n, 4);
        let mut config = Config::standard();
        config.branching = 4;
        config.aggregations.extend(management_aggregations());
        let mut agents: Vec<Agent> =
            (0..n).map(|i| Agent::new(i, &layout, config.clone(), vec![0])).collect();
        for a in agents.iter_mut() {
            a.set_local_attr(ATTR_UP, 1i64);
            a.set_local_attr(ATTR_PATHS, 2i64);
            // Bandwidth varies by zone: zone z gets 100*(z+1) KB/s.
            let zone = a.chain()[0].label().unwrap_or(0);
            a.set_local_attr(ATTR_BANDWIDTH, f64::from(zone + 1) * 100.0);
        }
        converge(&mut agents, 14);

        let probe = &agents[0];
        let g = guidance(probe, &ZoneId::root(), ATTR_BANDWIDTH).expect("root replicated");
        assert_eq!(g.min.unwrap().0, 0, "zone /0 has the least bandwidth");
        assert_eq!(g.max.unwrap().0, 3, "zone /3 has the most bandwidth");
        assert_eq!(g.max.unwrap().1, 400.0);

        // Availability fused across the whole system.
        let up: i64 = probe
            .root_table()
            .iter()
            .filter_map(|(_, r)| r.get(ATTR_UP).and_then(|v| v.as_i64()))
            .sum();
        assert_eq!(up, 16);

        // Foreign zones give no guidance.
        assert!(guidance(probe, &ZoneId::root().child(2).child(9), ATTR_UP).is_none());
    }
}
