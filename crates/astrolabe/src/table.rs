//! Zone tables: the replicated `child-label → row` maps.
//!
//! Every agent replicates the table of each zone on its root path. Tables
//! merge by newest-stamp-wins per row; rows are shared via `Arc` across the
//! replicas of one simulation process.

use std::sync::Arc;

use crate::mib::{Mib, Stamp};
use crate::zone::ZoneId;

/// What [`ZoneTable::merge_row_outcome`] did with an offered row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The present version is at least as new; nothing changed.
    Rejected,
    /// No row existed for the label; the offer was inserted.
    Inserted,
    /// The offer replaced an older row.
    Replaced {
        /// The offer's `issued_us` strictly exceeds the replaced row's
        /// (i.e. this was a genuine time advance, not a tie-break).
        advanced_time: bool,
        /// The replaced row carried `sys$agg:` mobile code.
        old_carried_agg: bool,
    },
}

/// Digest entry advertising one row version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowDigest {
    /// Child label of the row.
    pub label: u16,
    /// The advertised version stamp.
    pub stamp: Stamp,
    /// Content hash of the row's attributes (stamp-independent). Carried
    /// on the wire only in delta-gossip mode, where a matching hash lets a
    /// peer adopt the stamp from the digest itself instead of pulling the
    /// full row; `wire_size` accounts for it accordingly.
    pub chash: u64,
}

/// One table slot, laid out for the scan-heavy paths: the label and a copy
/// of the row's stamp sit inline, so digesting, diffing, GC sweeps and
/// eviction walk a contiguous array without chasing the `Arc` — the shared
/// attribute payload is only dereferenced when values are actually read.
#[derive(Debug, Clone)]
pub struct Row {
    /// Child label of the row.
    pub label: u16,
    /// Inline copy of `mib.stamp` (kept in sync by every mutation path).
    pub stamp: Stamp,
    /// Table generation at which this row last changed (stamp or content).
    /// Partial digests cover exactly the rows with `gen` past a peer's
    /// last-synced generation.
    pub gen: u64,
    /// The shared row version.
    pub mib: Arc<Mib>,
}

/// A replica of one zone's table.
#[derive(Debug, Clone, Default)]
pub struct ZoneTable {
    /// The zone this table describes; rows summarize its children.
    pub zone: ZoneId,
    rows: Vec<Row>,
    generation: u64,
    content_gen: u64,
}

impl ZoneTable {
    /// Creates an empty replica for `zone`.
    pub fn new(zone: ZoneId) -> Self {
        ZoneTable { zone, rows: Vec::new(), generation: 0, content_gen: 0 }
    }

    /// Monotone counter bumped on every mutation. Callers key caches
    /// (digests, aggregation inputs) on this to skip recomputation between
    /// gossip rounds where the table did not change.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Monotone counter bumped only when attribute *values* change — a
    /// re-stamped heartbeat of an identical row advances [`Self::generation`]
    /// (digests must see the new stamp) but not this. In gossip steady state
    /// every row is re-stamped every round while values stand still, so
    /// caches of value-derived state (aggregate summaries, peer lists) key
    /// on this counter and hit indefinitely.
    pub fn content_generation(&self) -> u64 {
        self.content_gen
    }

    /// All rows in label order, without cloning.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows present.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row for child `label`.
    pub fn get(&self, label: u16) -> Option<&Arc<Mib>> {
        self.rows.binary_search_by_key(&label, |r| r.label).ok().map(|i| &self.rows[i].mib)
    }

    /// Iterates `(label, row)` in label order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Arc<Mib>)> {
        self.rows.iter().map(|r| (r.label, &r.mib))
    }

    /// Inserts `row` for `label` if it is newer than what is present.
    /// Returns `true` when the table changed.
    pub fn merge_row(&mut self, label: u16, row: Arc<Mib>) -> bool {
        self.merge_row_outcome(label, row) != MergeOutcome::Rejected
    }

    /// [`ZoneTable::merge_row`] reporting what happened to the previous row,
    /// so the gossip merge loop learns everything in one binary search.
    pub fn merge_row_outcome(&mut self, label: u16, row: Arc<Mib>) -> MergeOutcome {
        match self.rows.binary_search_by_key(&label, |r| r.label) {
            Ok(i) => {
                let slot = &mut self.rows[i];
                // The inline stamp answers newest-wins without touching the
                // old row's payload.
                if row.stamp > slot.stamp {
                    let outcome = MergeOutcome::Replaced {
                        advanced_time: row.stamp.issued_us > slot.stamp.issued_us,
                        old_carried_agg: slot.mib.carries_mobile_code(),
                    };
                    if !row.same_attrs(&slot.mib) {
                        self.content_gen += 1;
                    }
                    slot.stamp = row.stamp;
                    slot.mib = row;
                    self.generation += 1;
                    self.rows[i].gen = self.generation;
                    outcome
                } else {
                    MergeOutcome::Rejected
                }
            }
            Err(i) => {
                self.generation += 1;
                self.content_gen += 1;
                self.rows
                    .insert(i, Row { label, stamp: row.stamp, gen: self.generation, mib: row });
                MergeOutcome::Inserted
            }
        }
    }

    /// Unconditionally installs `row` for `label`, bypassing the
    /// newest-wins fence of [`ZoneTable::merge_row`]. Fault injection only:
    /// a corruption strike must scramble a held row *without* advancing its
    /// stamp — an advanced stamp would both propagate through digests and be
    /// healed by the next legitimate heartbeat, whereas an in-place scramble
    /// models silent memory corruption that anti-entropy cannot see.
    /// Returns `true` when the attribute values changed.
    pub fn force_replace(&mut self, label: u16, row: Arc<Mib>) -> bool {
        match self.rows.binary_search_by_key(&label, |r| r.label) {
            Ok(i) => {
                let slot = &mut self.rows[i];
                let changed = !row.same_attrs(&slot.mib);
                if changed {
                    self.content_gen += 1;
                }
                slot.stamp = row.stamp;
                slot.mib = row;
                self.generation += 1;
                self.rows[i].gen = self.generation;
                changed
            }
            Err(i) => {
                self.generation += 1;
                self.content_gen += 1;
                self.rows
                    .insert(i, Row { label, stamp: row.stamp, gen: self.generation, mib: row });
                true
            }
        }
    }

    /// Unconditionally removes the row for `label` (failure GC).
    /// Returns `true` when a row was removed.
    pub fn remove(&mut self, label: u16) -> bool {
        match self.rows.binary_search_by_key(&label, |r| r.label) {
            Ok(i) => {
                self.rows.remove(i);
                self.generation += 1;
                self.content_gen += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Removes rows issued before `cutoff_us`, except the row `keep` (an
    /// agent never evicts its own row). Returns the evicted labels.
    pub fn evict_stale(&mut self, cutoff_us: u64, keep: Option<u16>) -> Vec<u16> {
        // Both passes read only the inline (label, stamp) fields: one
        // contiguous scan, no payload dereference.
        let evicted: Vec<u16> = self
            .rows
            .iter()
            .filter(|r| Some(r.label) != keep && r.stamp.issued_us < cutoff_us)
            .map(|r| r.label)
            .collect();
        self.rows.retain(|r| Some(r.label) == keep || r.stamp.issued_us >= cutoff_us);
        if !evicted.is_empty() {
            self.generation += 1;
            self.content_gen += 1;
        }
        debug_assert!(evicted.iter().all(|l| self.get(*l).is_none()));
        evicted
    }

    /// Advances the stamp of a held row in place, leaving its attributes
    /// untouched — the delta-gossip refresh path, equivalent to merging a
    /// full row whose content is known (by hash) to match what is held.
    /// Bumps [`Self::generation`] but not [`Self::content_generation`],
    /// exactly like a same-attrs [`ZoneTable::merge_row`]. Returns `false`
    /// when the label is absent or the stamp does not advance.
    pub fn restamp(&mut self, label: u16, stamp: Stamp) -> bool {
        match self.rows.binary_search_by_key(&label, |r| r.label) {
            Ok(i) if stamp > self.rows[i].stamp => {
                let slot = &mut self.rows[i];
                slot.stamp = stamp;
                slot.mib = Arc::new(slot.mib.restamped(stamp));
                self.generation += 1;
                self.rows[i].gen = self.generation;
                true
            }
            _ => false,
        }
    }

    /// Digest of every row (for anti-entropy exchange) — a contiguous copy
    /// of the inline `(label, stamp)` columns.
    pub fn digest(&self) -> Vec<RowDigest> {
        self.rows
            .iter()
            .map(|r| RowDigest { label: r.label, stamp: r.stamp, chash: r.mib.content_hash() })
            .collect()
    }

    /// Digest of only the rows that changed after table generation `since`
    /// (delta gossip). `digest_since(0)` equals [`ZoneTable::digest`].
    pub fn digest_since(&self, since: u64) -> Vec<RowDigest> {
        self.rows
            .iter()
            .filter(|r| r.gen > since)
            .map(|r| RowDigest { label: r.label, stamp: r.stamp, chash: r.mib.content_hash() })
            .collect()
    }

    /// Compares a peer digest against this replica.
    ///
    /// Returns `(newer_here, missing_here)`: labels where this replica has a
    /// strictly newer (or unknown-to-peer) row, and labels where the peer
    /// advertises a strictly newer (or absent-here) row.
    pub fn diff(&self, peer: &[RowDigest]) -> (Vec<u16>, Vec<u16>) {
        let mut newer_here = Vec::new();
        let mut missing_here = Vec::new();
        self.diff_into(peer, &mut newer_here, &mut missing_here);
        (newer_here, missing_here)
    }

    /// [`ZoneTable::diff`] writing into caller-provided buffers, so agents
    /// can reuse scratch vectors across the many digests of a gossip round.
    /// The buffers are cleared first.
    pub fn diff_into(
        &self,
        peer: &[RowDigest],
        newer_here: &mut Vec<u16>,
        missing_here: &mut Vec<u16>,
    ) {
        newer_here.clear();
        missing_here.clear();
        // Tables are bounded by the zone branching factor (tens of rows), so
        // the nested label scan below beats a sorted merge-walk in practice:
        // it is branch-predictable `u16` compares over one cache line.
        for d in peer {
            match self.rows.binary_search_by_key(&d.label, |r| r.label) {
                Ok(i) => {
                    let held = self.rows[i].stamp;
                    if held > d.stamp {
                        newer_here.push(d.label);
                    } else if d.stamp > held {
                        missing_here.push(d.label);
                    }
                }
                Err(_) => missing_here.push(d.label),
            }
        }
        for r in &self.rows {
            if !peer.iter().any(|d| d.label == r.label) {
                newer_here.push(r.label);
            }
        }
        newer_here.sort_unstable();
        newer_here.dedup();
    }

    /// Approximate serialized size of the whole table.
    pub fn wire_size(&self) -> usize {
        self.rows.iter().map(|r| 2 + r.mib.wire_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::MibBuilder;

    fn row(t: u64, origin: u32) -> Arc<Mib> {
        Arc::new(MibBuilder::new().attr("t", t as i64).build(Stamp {
            issued_us: t,
            version: 0,
            origin,
        }))
    }

    #[test]
    fn merge_keeps_newest() {
        let mut t = ZoneTable::new(ZoneId::root());
        assert!(t.merge_row(3, row(10, 0)));
        assert!(!t.merge_row(3, row(5, 0)), "older row must not replace");
        assert!(t.merge_row(3, row(20, 0)));
        assert_eq!(t.get(3).unwrap().stamp.issued_us, 20);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rows_stay_sorted() {
        let mut t = ZoneTable::new(ZoneId::root());
        for l in [5u16, 1, 9, 3] {
            t.merge_row(l, row(1, 0));
        }
        let labels: Vec<u16> = t.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec![1, 3, 5, 9]);
    }

    #[test]
    fn diff_classifies_rows() {
        let mut a = ZoneTable::new(ZoneId::root());
        let mut b = ZoneTable::new(ZoneId::root());
        a.merge_row(1, row(10, 0)); // same on both
        b.merge_row(1, row(10, 0));
        a.merge_row(2, row(20, 0)); // newer at a
        b.merge_row(2, row(15, 0));
        b.merge_row(3, row(30, 0)); // only at b
        a.merge_row(4, row(40, 0)); // only at a

        let (newer_at_a, missing_at_a) = a.diff(&b.digest());
        assert_eq!(newer_at_a, vec![2, 4]);
        assert_eq!(missing_at_a, vec![3]);
    }

    #[test]
    fn diff_symmetric_consistency() {
        let mut a = ZoneTable::new(ZoneId::root());
        let mut b = ZoneTable::new(ZoneId::root());
        a.merge_row(1, row(10, 0));
        b.merge_row(1, row(12, 0));
        let (na, ma) = a.diff(&b.digest());
        let (nb, mb) = b.diff(&a.digest());
        assert_eq!(na, mb);
        assert_eq!(ma, nb);
    }

    #[test]
    fn evict_stale_spares_keep() {
        let mut t = ZoneTable::new(ZoneId::root());
        t.merge_row(1, row(10, 0));
        t.merge_row(2, row(100, 0));
        t.merge_row(3, row(5, 0));
        let evicted = t.evict_stale(50, Some(3));
        assert_eq!(evicted, vec![1]);
        assert!(t.get(3).is_some(), "own row survives");
        assert!(t.get(2).is_some());
    }

    #[test]
    fn remove_row() {
        let mut t = ZoneTable::new(ZoneId::root());
        t.merge_row(1, row(1, 0));
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert!(t.is_empty());
    }

    #[test]
    fn force_replace_bypasses_stamp_fence() {
        let mut t = ZoneTable::new(ZoneId::root());
        t.merge_row(3, row(10, 0));
        let gen = t.generation();
        // Same stamp, different attrs: merge_row refuses, force_replace wins.
        let scrambled = Arc::new(MibBuilder::new().attr("t", -1i64).build(Stamp {
            issued_us: 10,
            version: 0,
            origin: 0,
        }));
        assert!(!t.merge_row(3, Arc::clone(&scrambled)));
        assert!(t.force_replace(3, scrambled));
        assert_eq!(t.get(3).unwrap().get("t").unwrap().as_i64(), Some(-1));
        assert!(t.generation() > gen, "forced replace must invalidate digest caches");
        // Identical attrs report no value change but still bump generation.
        let same = Arc::clone(t.get(3).unwrap());
        let content = t.content_generation();
        assert!(!t.force_replace(3, same));
        assert_eq!(t.content_generation(), content);
    }

    #[test]
    fn restamp_advances_stamp_not_content() {
        let mut t = ZoneTable::new(ZoneId::root());
        t.merge_row(3, row(10, 0));
        let (gen, content) = (t.generation(), t.content_generation());
        let newer = Stamp { issued_us: 20, version: 0, origin: 0 };
        assert!(t.restamp(3, newer));
        assert_eq!(t.get(3).unwrap().stamp, newer);
        assert!(t.generation() > gen, "digest caches must see the new stamp");
        assert_eq!(t.content_generation(), content, "values did not change");
        // Regressions and unknown labels are refused.
        assert!(!t.restamp(3, Stamp { issued_us: 5, version: 0, origin: 0 }));
        assert!(!t.restamp(9, newer));
    }

    #[test]
    fn digest_since_covers_only_changed_rows() {
        let mut t = ZoneTable::new(ZoneId::root());
        t.merge_row(1, row(10, 0));
        t.merge_row(2, row(10, 0));
        let mark = t.generation();
        t.merge_row(2, row(20, 0));
        let partial = t.digest_since(mark);
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].label, 2);
        assert_eq!(t.digest_since(0), t.digest());
        assert!(t.digest_since(t.generation()).is_empty());
        // Digest entries carry the stamp-independent content hash.
        assert_eq!(t.digest()[0].chash, t.get(1).unwrap().content_hash());
    }

    #[test]
    fn concurrent_writers_tie_break_deterministically() {
        // Two reps may issue the same aggregate concurrently; merge order
        // must not matter.
        let r1 = row(10, 1);
        let r2 = row(10, 2);
        let mut a = ZoneTable::new(ZoneId::root());
        a.merge_row(0, r1.clone());
        a.merge_row(0, r2.clone());
        let mut b = ZoneTable::new(ZoneId::root());
        b.merge_row(0, r2);
        b.merge_row(0, r1);
        assert_eq!(a.get(0).unwrap().stamp, b.get(0).unwrap().stamp);
        assert_eq!(a.get(0).unwrap().stamp.origin, 2);
    }
}
