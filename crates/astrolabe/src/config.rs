//! Agent configuration and the standard aggregation programs.

use simnet::SimDuration;

/// A named aggregation program, carried as source text (mobile code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// Installation name (unique per deployment).
    pub name: String,
    /// Program source, e.g. `SELECT MIN(load) AS load`.
    pub program: String,
}

impl AggSpec {
    /// Creates a named program.
    pub fn new(name: impl Into<String>, program: impl Into<String>) -> Self {
        AggSpec { name: name.into(), program: program.into() }
    }
}

/// Static configuration shared by every agent of a deployment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Zone branching factor (paper suggests 64).
    pub branching: u16,
    /// Gossip round period per agent.
    pub gossip_interval: SimDuration,
    /// Hard staleness bound: rows issued longer ago than this are evicted
    /// and refused in merges regardless of suspicion level. Primary failure
    /// detection is phi-accrual (see [`Config::phi_threshold`]); the TTL is
    /// the backstop for rows whose update cadence was never observed.
    pub row_ttl: SimDuration,
    /// Phi-accrual suspicion threshold at which a silent row is evicted.
    /// Higher is more conservative; 8 ≈ one false eviction per 10^8
    /// on-cadence observations.
    pub phi_threshold: f64,
    /// Inter-arrival samples the per-row phi detectors keep.
    pub phi_window: usize,
    /// Representatives elected per zone (`k` of `REPSEL`).
    pub reps_per_zone: usize,
    /// Aggregation programs installed from configuration. Dynamic programs
    /// can be added at runtime via [`crate::Agent::install_aggregation`].
    pub aggregations: Vec<AggSpec>,
    /// How many random global contacts each agent keeps for bootstrap.
    pub contact_fanout: usize,
    /// Delta-encoded gossip (the `NEWSWIRE_DELTAS=1` arm): digests carry
    /// content hashes and may cover only rows changed since the last
    /// exchange with the peer, replies re-stamp unchanged rows instead of
    /// re-shipping them, and every [`DELTA_FULL_EXCHANGE_PERIOD`]-th digest
    /// to a peer is forced full so a dropped delta can never strand it.
    /// Off by default; runs with it off are byte-identical to builds
    /// without the delta protocol.
    pub delta_gossip: bool,
}

/// In delta-gossip mode, every n-th digest to a given peer is a full
/// digest — the safety net that re-advertises rows a lost partial digest
/// may have skipped.
pub const DELTA_FULL_EXCHANGE_PERIOD: u32 = 8;

impl Config {
    /// The standard configuration: the core management aggregation
    /// (representative election, load, membership count) at the paper's
    /// parameters.
    pub fn standard() -> Self {
        Config::with_reps(2)
    }

    /// Standard configuration with `k` representatives per zone.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_reps(k: usize) -> Self {
        assert!(k > 0, "need at least one representative per zone");
        Config {
            branching: crate::zone::DEFAULT_BRANCHING,
            gossip_interval: SimDuration::from_secs(2),
            row_ttl: SimDuration::from_secs(30),
            phi_threshold: 8.0,
            phi_window: 16,
            reps_per_zone: k,
            aggregations: vec![AggSpec::new("core", Self::core_program(k))],
            contact_fanout: 3,
            delta_gossip: simnet::delta_mode(),
        }
    }

    /// Source of the core management program for `k` representatives.
    pub fn core_program(k: usize) -> String {
        format!(
            "SELECT REPSEL({k}, load, reps) AS reps, MIN(load) AS load, \
             SUM(nmembers) AS nmembers"
        )
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::parse_program;

    #[test]
    fn standard_config_programs_compile() {
        let c = Config::standard();
        for spec in &c.aggregations {
            parse_program(&spec.program).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
        assert_eq!(c.branching, 64);
        assert_eq!(c.reps_per_zone, 2);
    }

    #[test]
    fn with_reps_parameterizes_core_program() {
        let c = Config::with_reps(3);
        assert!(c.aggregations[0].program.contains("REPSEL(3"));
    }

    #[test]
    #[should_panic(expected = "at least one representative")]
    fn zero_reps_rejected() {
        Config::with_reps(0);
    }
}
