//! The SQL-like aggregation-function language (paper §3).
//!
//! "Astrolabe computes these summaries using aggregation functions, which
//! are expressions in SQL that take any number of attributes from the child
//! table and produce new attributes for inclusion into the appropriate row
//! in the parent table… The aggregation functions are thus a form of mobile
//! code."
//!
//! Programs are carried through the system as strings (see the `sys$agg:`
//! attribute convention in [`crate::Agent`]), compiled with
//! [`parse_program`], and evaluated over child tables with [`run_program`].
//! The same expression evaluator powers subscriber-side SQL predicates over
//! news-item metadata ([`parse_predicate`] / [`eval_predicate`]).

mod ast;
mod eval;
mod lexer;
mod parser;

pub use ast::{AggFn, AggProgram, BinOp, Expr, Literal, SelectItem};
pub use eval::{eval_predicate, eval_scalar, run_program, EmptyRow, EvalError, RowSource};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse_predicate, parse_program, ParseAggError};
