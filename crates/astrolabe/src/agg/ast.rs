//! Abstract syntax of the aggregation-function language.

use std::fmt;

/// Binary operators, in SQL notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        })
    }
}

/// A literal value in a program.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// A scalar expression evaluated against one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(String),
    /// Literal.
    Lit(Literal),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Scalar function call (`CONTAINS`, `PREFIX`, `COALESCE`, …).
    Call(String, Vec<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => f.write_str(c),
            Expr::Lit(l) => write!(f, "{l}"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// The aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Row count (of rows passing `WHERE`).
    Count,
    /// Value from the first row (label order) that has one.
    First,
    /// Bitwise OR of bit arrays — the §6 Bloom aggregation.
    OrBits,
    /// Bitwise OR of integers — the §7 category-mask aggregation.
    OrInt,
    /// Set union.
    Union,
    /// Representative selection: `REPSEL(k, score, set)`.
    RepSel,
}

impl AggFn {
    /// Parses a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFn> {
        Some(match name.to_ascii_uppercase().as_str() {
            "MIN" => AggFn::Min,
            "MAX" => AggFn::Max,
            "SUM" => AggFn::Sum,
            "AVG" => AggFn::Avg,
            "COUNT" => AggFn::Count,
            "FIRST" => AggFn::First,
            "ORBITS" => AggFn::OrBits,
            "ORINT" => AggFn::OrInt,
            "UNION" => AggFn::Union,
            "REPSEL" => AggFn::RepSel,
            _ => return None,
        })
    }

    /// Canonical upper-case name.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Sum => "SUM",
            AggFn::Avg => "AVG",
            AggFn::Count => "COUNT",
            AggFn::First => "FIRST",
            AggFn::OrBits => "ORBITS",
            AggFn::OrInt => "ORINT",
            AggFn::Union => "UNION",
            AggFn::RepSel => "REPSEL",
        }
    }
}

/// One output attribute of a program: an aggregate over the child rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The aggregate to compute.
    pub func: AggFn,
    /// Arguments (scalar expressions evaluated per row; `REPSEL`'s first
    /// argument must be an integer literal).
    pub args: Vec<Expr>,
    /// Output attribute name.
    pub alias: String,
}

/// A compiled aggregation program:
/// `SELECT agg(...) AS name, ... [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggProgram {
    /// Output attributes.
    pub selects: Vec<SelectItem>,
    /// Row filter, if any.
    pub filter: Option<Expr>,
}

impl fmt::Display for AggProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        for (i, s) in self.selects.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}(", s.func.name())?;
            for (j, a) in s.args.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ") AS {}", s.alias)?;
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggfn_names_roundtrip() {
        for f in [
            AggFn::Min,
            AggFn::Max,
            AggFn::Sum,
            AggFn::Avg,
            AggFn::Count,
            AggFn::First,
            AggFn::OrBits,
            AggFn::OrInt,
            AggFn::Union,
            AggFn::RepSel,
        ] {
            assert_eq!(AggFn::from_name(f.name()), Some(f));
            assert_eq!(AggFn::from_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(AggFn::from_name("MEDIAN"), None);
    }

    #[test]
    fn expr_display_parenthesizes() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Column("a".into())),
            Box::new(Expr::Neg(Box::new(Expr::Lit(Literal::Int(2))))),
        );
        assert_eq!(e.to_string(), "(a + (-2))");
    }

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::Str("it's".into()).to_string(), "'it''s'");
        assert_eq!(Literal::Float(2.0).to_string(), "2.0");
    }
}
