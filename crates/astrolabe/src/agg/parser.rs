//! Recursive-descent parser for the aggregation-function language.

use std::fmt;

use super::ast::{AggFn, AggProgram, BinOp, Expr, Literal, SelectItem};
use super::lexer::{lex, LexError, Token};

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseAggError {
    /// Tokenizer failure.
    Lex(LexError),
    /// Grammar failure with a description.
    Syntax(String),
}

impl fmt::Display for ParseAggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAggError::Lex(e) => write!(f, "{e}"),
            ParseAggError::Syntax(m) => write!(f, "syntax error: {m}"),
        }
    }
}

impl std::error::Error for ParseAggError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseAggError::Lex(e) => Some(e),
            ParseAggError::Syntax(_) => None,
        }
    }
}

impl From<LexError> for ParseAggError {
    fn from(e: LexError) -> Self {
        ParseAggError::Lex(e)
    }
}

fn syntax(msg: impl Into<String>) -> ParseAggError {
    ParseAggError::Syntax(msg.into())
}

/// Parses a full aggregation program:
/// `SELECT agg(args) AS name, ... [WHERE predicate]`.
///
/// # Errors
///
/// Returns [`ParseAggError`] on malformed input, including non-aggregate
/// select items (every output must be an aggregate, as in SQL aggregated over
/// the whole child table).
///
/// ```
/// let p = astrolabe::parse_program(
///     "SELECT MIN(load) AS load, SUM(nmembers) AS nmembers WHERE nmembers > 0",
/// )?;
/// assert_eq!(p.selects.len(), 2);
/// # Ok::<(), astrolabe::ParseAggError>(())
/// ```
pub fn parse_program(src: &str) -> Result<AggProgram, ParseAggError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.expect(&Token::Select)?;
    let mut selects = Vec::new();
    loop {
        selects.push(p.parse_select_item()?);
        if p.peek() == Some(&Token::Comma) {
            p.pos += 1;
        } else {
            break;
        }
    }
    let filter = if p.peek() == Some(&Token::Where) {
        p.pos += 1;
        Some(p.parse_expr()?)
    } else {
        None
    };
    p.expect_end()?;
    Ok(AggProgram { selects, filter })
}

/// Parses a bare predicate expression (no `SELECT`), as used for subscriber
/// SQL subscriptions (paper §8) and `WHERE`-style row filters.
///
/// # Errors
///
/// Returns [`ParseAggError`] on malformed input.
///
/// ```
/// let e = astrolabe::parse_predicate("urgency <= 3 AND CONTAINS(source, 'reuters')")?;
/// assert!(e.to_string().contains("AND"));
/// # Ok::<(), astrolabe::ParseAggError>(())
/// ```
pub fn parse_predicate(src: &str) -> Result<Expr, ParseAggError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_expr()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseAggError> {
        match self.next() {
            Some(got) if got == *t => Ok(()),
            Some(got) => Err(syntax(format!("expected `{t}`, found `{got}`"))),
            None => Err(syntax(format!("expected `{t}`, found end of input"))),
        }
    }

    fn expect_end(&self) -> Result<(), ParseAggError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(syntax(format!("unexpected trailing `{}`", self.toks[self.pos])))
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseAggError> {
        let name = match self.next() {
            Some(Token::Ident(n)) => n,
            other => return Err(syntax(format!("expected aggregate name, found {other:?}"))),
        };
        let func = AggFn::from_name(&name)
            .ok_or_else(|| syntax(format!("`{name}` is not an aggregate function")))?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        check_agg_arity(func, args.len())?;
        self.expect(&Token::As)?;
        let alias = match self.next() {
            Some(Token::Ident(n)) => n,
            other => return Err(syntax(format!("expected alias after AS, found {other:?}"))),
        };
        Ok(SelectItem { func, args, alias })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseAggError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseAggError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseAggError> {
        let mut lhs = self.parse_not()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            let rhs = self.parse_not()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseAggError> {
        if self.peek() == Some(&Token::Not) {
            self.pos += 1;
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseAggError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_add()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr, ParseAggError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseAggError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseAggError> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseAggError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Lit(Literal::Int(i))),
            Some(Token::Float(x)) => Ok(Expr::Lit(Literal::Float(x))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Literal::Str(s))),
            Some(Token::Bool(b)) => Ok(Expr::Lit(Literal::Bool(b))),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    if AggFn::from_name(&name).is_some() {
                        return Err(syntax(format!(
                            "aggregate `{name}` is not allowed inside a scalar expression"
                        )));
                    }
                    Ok(Expr::Call(name.to_ascii_uppercase(), args))
                } else {
                    Ok(Expr::Column(name))
                }
            }
            other => Err(syntax(format!("unexpected {other:?} in expression"))),
        }
    }
}

fn check_agg_arity(func: AggFn, n: usize) -> Result<(), ParseAggError> {
    let ok = match func {
        AggFn::Count => n == 0,
        AggFn::RepSel => n == 3,
        _ => n == 1,
    };
    if ok {
        Ok(())
    } else {
        Err(syntax(format!(
            "{} takes {} argument(s), got {n}",
            func.name(),
            match func {
                AggFn::Count => "0",
                AggFn::RepSel => "3",
                _ => "1",
            }
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_program() {
        let p = parse_program(
            "SELECT REPSEL(2, load, reps) AS reps, MIN(load) AS load, \
             SUM(nmembers) AS nmembers, ORBITS(subs) AS subs",
        )
        .unwrap();
        assert_eq!(p.selects.len(), 4);
        assert_eq!(p.selects[0].func, AggFn::RepSel);
        assert_eq!(p.selects[0].args.len(), 3);
        assert_eq!(p.selects[3].alias, "subs");
        assert!(p.filter.is_none());
    }

    #[test]
    fn parses_where_clause_with_precedence() {
        let p = parse_program("SELECT COUNT() AS n WHERE a + 2 * b >= 10 AND NOT c = 'x'").unwrap();
        let w = p.filter.unwrap().to_string();
        assert_eq!(w, "(((a + (2 * b)) >= 10) AND (NOT (c = 'x')))");
    }

    #[test]
    fn display_roundtrip() {
        let src = "SELECT MIN(load) AS load, COUNT() AS n WHERE (x OR y) AND z > 1.5";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn predicate_mode() {
        let e = parse_predicate("urgency <= 3 AND PREFIX(subject, '04')").unwrap();
        match &e {
            Expr::Bin(BinOp::And, _, rhs) => match rhs.as_ref() {
                Expr::Call(name, args) => {
                    assert_eq!(name, "PREFIX");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("unexpected rhs {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_scalar_select() {
        let err = parse_program("SELECT load AS l").unwrap_err();
        assert!(err.to_string().contains("not an aggregate"));
    }

    #[test]
    fn rejects_nested_aggregate() {
        let err = parse_predicate("MIN(load) > 2").unwrap_err();
        assert!(err.to_string().contains("not allowed inside"));
    }

    #[test]
    fn rejects_bad_arity() {
        assert!(parse_program("SELECT MIN(a, b) AS x").is_err());
        assert!(parse_program("SELECT COUNT(a) AS x").is_err());
        assert!(parse_program("SELECT REPSEL(2, load) AS x").is_err());
    }

    #[test]
    fn rejects_missing_alias() {
        let err = parse_program("SELECT MIN(load)").unwrap_err();
        assert!(err.to_string().contains("AS"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_predicate("a = 1 b").is_err());
    }

    #[test]
    fn unary_minus_and_parens() {
        let e = parse_predicate("-(a + 1) < -2").unwrap();
        assert_eq!(e.to_string(), "((-(a + 1)) < (-2))");
    }
}
