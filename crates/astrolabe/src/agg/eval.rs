//! Evaluator for the aggregation-function language.
//!
//! Two entry points:
//!
//! * [`eval_predicate`] — scalar evaluation of one expression against one
//!   row (`WHERE` clauses, and the subscriber SQL subscriptions of §8).
//! * [`run_program`] — full aggregate evaluation of a program over a child
//!   table, producing the parent-row attributes (§3's "SQL aggregation
//!   functions… recomputed whenever a row changes in a child table").
//!
//! NULL semantics follow SQL: a missing column is NULL, NULL propagates
//! through operators, and a NULL predicate excludes the row.

use std::borrow::Cow;
use std::collections::BTreeSet;
use std::fmt;

use super::ast::{AggFn, AggProgram, BinOp, Expr, Literal};
use crate::value::AttrValue;

/// Anything a scalar expression can read columns from.
///
/// Columns are returned as [`Cow`] so table-backed rows hand out borrows —
/// the evaluator never deep-clones `Str`/`Set`/`Bits` values just to compare
/// them — while synthetic adapters (e.g. a news item viewed as a row) can
/// still materialize values on the fly.
pub trait RowSource {
    /// The value of column `name`, or `None` when absent (SQL NULL).
    fn col(&self, name: &str) -> Option<Cow<'_, AttrValue>>;
}

impl RowSource for crate::mib::Mib {
    fn col(&self, name: &str) -> Option<Cow<'_, AttrValue>> {
        self.get(name).map(Cow::Borrowed)
    }
}

impl<T: RowSource + ?Sized> RowSource for &T {
    fn col(&self, name: &str) -> Option<Cow<'_, AttrValue>> {
        (**self).col(name)
    }
}

impl RowSource for std::sync::Arc<crate::mib::Mib> {
    fn col(&self, name: &str) -> Option<Cow<'_, AttrValue>> {
        self.get(name).map(Cow::Borrowed)
    }
}

/// Zone-table rows aggregate directly as `(label, row)` pairs — the wire
/// shape gossip batches use.
impl RowSource for (u16, std::sync::Arc<crate::mib::Mib>) {
    fn col(&self, name: &str) -> Option<Cow<'_, AttrValue>> {
        self.1.get(name).map(Cow::Borrowed)
    }
}

/// Zone-table slots aggregate in place, so the agent can run programs over
/// `ZoneTable::rows()` without cloning each `Mib`.
impl RowSource for crate::table::Row {
    fn col(&self, name: &str) -> Option<Cow<'_, AttrValue>> {
        self.mib.get(name).map(Cow::Borrowed)
    }
}

/// A row with no columns (for evaluating constant expressions).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyRow;

impl RowSource for EmptyRow {
    fn col(&self, _name: &str) -> Option<Cow<'_, AttrValue>> {
        None
    }
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An operator or function met a value of the wrong type.
    TypeMismatch(String),
    /// Unknown scalar function.
    UnknownFunction(String),
    /// Wrong number of arguments to a scalar function.
    BadArity(String),
    /// `REPSEL`'s `k` argument did not evaluate to a constant integer.
    BadRepSelK,
    /// Bit arrays of different lengths cannot be OR-ed.
    BitsLenMismatch,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::BadArity(n) => write!(f, "wrong number of arguments to `{n}`"),
            EvalError::BadRepSelK => write!(f, "REPSEL k must be a constant positive integer"),
            EvalError::BitsLenMismatch => write!(f, "bit arrays of different lengths"),
        }
    }
}
impl std::error::Error for EvalError {}

fn lit_value(l: &Literal) -> AttrValue {
    match l {
        Literal::Int(i) => AttrValue::Int(*i),
        Literal::Float(x) => AttrValue::Float(*x),
        Literal::Str(s) => AttrValue::Str(s.clone()),
        Literal::Bool(b) => AttrValue::Bool(*b),
    }
}

/// Evaluates a scalar expression against one row; `Ok(None)` is SQL NULL.
///
/// Column reads borrow from the row ([`Cow::Borrowed`]); computed results
/// are [`Cow::Owned`]. Call `.into_owned()` on the result when ownership is
/// needed.
///
/// # Errors
///
/// Returns [`EvalError`] on type mismatches or unknown functions.
pub fn eval_scalar<'r, R: RowSource>(
    expr: &Expr,
    row: &'r R,
) -> Result<Option<Cow<'r, AttrValue>>, EvalError> {
    match expr {
        Expr::Column(name) => Ok(row.col(name)),
        Expr::Lit(l) => Ok(Some(Cow::Owned(lit_value(l)))),
        Expr::Neg(e) => match eval_scalar(e, row)?.as_deref() {
            None => Ok(None),
            Some(AttrValue::Int(i)) => Ok(Some(Cow::Owned(AttrValue::Int(-i)))),
            Some(AttrValue::Float(x)) => Ok(Some(Cow::Owned(AttrValue::Float(-x)))),
            Some(v) => Err(EvalError::TypeMismatch(format!("cannot negate {}", v.type_name()))),
        },
        Expr::Not(e) => match eval_scalar(e, row)?.as_deref() {
            None => Ok(None),
            Some(AttrValue::Bool(b)) => Ok(Some(Cow::Owned(AttrValue::Bool(!b)))),
            Some(v) => {
                Err(EvalError::TypeMismatch(format!("NOT needs bool, got {}", v.type_name())))
            }
        },
        Expr::Bin(op, l, r) => eval_bin(*op, l, r, row),
        Expr::Call(name, args) => eval_call(name, args, row),
    }
}

fn eval_bin<'r, R: RowSource>(
    op: BinOp,
    l: &Expr,
    r: &Expr,
    row: &'r R,
) -> Result<Option<Cow<'r, AttrValue>>, EvalError> {
    use BinOp::*;
    // Three-valued logic needs asymmetric NULL handling, so AND/OR first.
    if matches!(op, And | Or) {
        let lv = eval_scalar(l, row)?;
        let rv = eval_scalar(r, row)?;
        let as_bool = |v: &Option<Cow<'_, AttrValue>>| -> Result<Option<bool>, EvalError> {
            match v.as_deref() {
                None => Ok(None),
                Some(AttrValue::Bool(b)) => Ok(Some(*b)),
                Some(v) => Err(EvalError::TypeMismatch(format!(
                    "logical operator needs bool, got {}",
                    v.type_name()
                ))),
            }
        };
        let (lb, rb) = (as_bool(&lv)?, as_bool(&rv)?);
        let out = match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Some(false),
            (And, Some(true), Some(true)) => Some(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
            (Or, Some(false), Some(false)) => Some(false),
            _ => None,
        };
        return Ok(out.map(|b| Cow::Owned(AttrValue::Bool(b))));
    }

    let (Some(lv), Some(rv)) = (eval_scalar(l, row)?, eval_scalar(r, row)?) else {
        return Ok(None);
    };

    match op {
        Add | Sub | Mul | Div | Mod => {
            if let (AttrValue::Int(a), AttrValue::Int(b)) = (&*lv, &*rv) {
                let out = match op {
                    Add => a.checked_add(*b),
                    Sub => a.checked_sub(*b),
                    Mul => a.checked_mul(*b),
                    Div => a.checked_div(*b),
                    Mod => a.checked_rem(*b),
                    _ => unreachable!(),
                };
                // Overflow and division by zero are NULL, as in lenient SQL.
                return Ok(out.map(|i| Cow::Owned(AttrValue::Int(i))));
            }
            let (a, b) = match (lv.as_f64(), rv.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError::TypeMismatch(format!(
                        "arithmetic on {} and {}",
                        lv.type_name(),
                        rv.type_name()
                    )))
                }
            };
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                _ => unreachable!(),
            };
            Ok(out.is_finite().then_some(Cow::Owned(AttrValue::Float(out))))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = lv.partial_cmp_value(&rv).ok_or_else(|| {
                EvalError::TypeMismatch(format!(
                    "cannot compare {} with {}",
                    lv.type_name(),
                    rv.type_name()
                ))
            })?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Some(Cow::Owned(AttrValue::Bool(b))))
        }
        And | Or => unreachable!("handled above"),
    }
}

fn eval_call<'r, R: RowSource>(
    name: &str,
    args: &[Expr],
    row: &'r R,
) -> Result<Option<Cow<'r, AttrValue>>, EvalError> {
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::BadArity(name.to_owned()))
        }
    };
    match name {
        "CONTAINS" | "PREFIX" => {
            arity(2)?;
            let (Some(a), Some(b)) = (eval_scalar(&args[0], row)?, eval_scalar(&args[1], row)?)
            else {
                return Ok(None);
            };
            match (&*a, &*b) {
                (AttrValue::Str(a), AttrValue::Str(b)) => {
                    Ok(Some(Cow::Owned(AttrValue::Bool(match name {
                        "CONTAINS" => a.contains(b.as_str()),
                        _ => a.starts_with(b.as_str()),
                    }))))
                }
                (a, b) => Err(EvalError::TypeMismatch(format!(
                    "{name} needs strings, got {} and {}",
                    a.type_name(),
                    b.type_name()
                ))),
            }
        }
        "LEN" => {
            arity(1)?;
            Ok(eval_scalar(&args[0], row)?.map(|v| {
                Cow::Owned(AttrValue::Int(match &*v {
                    AttrValue::Str(s) => s.len() as i64,
                    AttrValue::Set(s) => s.len() as i64,
                    AttrValue::Bits(b) => b.count_ones() as i64,
                    AttrValue::Bytes(b) => b.len() as i64,
                    _ => 1,
                }))
            }))
        }
        "ABS" => {
            arity(1)?;
            match eval_scalar(&args[0], row)?.as_deref() {
                None => Ok(None),
                Some(AttrValue::Int(i)) => Ok(Some(Cow::Owned(AttrValue::Int(i.abs())))),
                Some(AttrValue::Float(x)) => Ok(Some(Cow::Owned(AttrValue::Float(x.abs())))),
                Some(v) => {
                    Err(EvalError::TypeMismatch(format!("ABS needs number, got {}", v.type_name())))
                }
            }
        }
        "COALESCE" => {
            if args.is_empty() {
                return Err(EvalError::BadArity(name.to_owned()));
            }
            for a in args {
                if let Some(v) = eval_scalar(a, row)? {
                    return Ok(Some(v));
                }
            }
            Ok(None)
        }
        "BIT" => {
            arity(2)?;
            let (Some(bits), Some(idx)) =
                (eval_scalar(&args[0], row)?, eval_scalar(&args[1], row)?)
            else {
                return Ok(None);
            };
            match (&*bits, &*idx) {
                (AttrValue::Bits(b), AttrValue::Int(i)) => {
                    let i = usize::try_from(*i).unwrap_or(usize::MAX);
                    Ok(Some(Cow::Owned(AttrValue::Bool(i < b.len() && b.get(i)))))
                }
                (a, b) => Err(EvalError::TypeMismatch(format!(
                    "BIT needs (bits, int), got ({}, {})",
                    a.type_name(),
                    b.type_name()
                ))),
            }
        }
        "IF" => {
            arity(3)?;
            match eval_scalar(&args[0], row)?.as_deref() {
                Some(AttrValue::Bool(true)) => eval_scalar(&args[1], row),
                Some(AttrValue::Bool(false)) | None => eval_scalar(&args[2], row),
                Some(v) => Err(EvalError::TypeMismatch(format!(
                    "IF condition needs bool, got {}",
                    v.type_name()
                ))),
            }
        }
        other => Err(EvalError::UnknownFunction(other.to_owned())),
    }
}

/// Evaluates a predicate: `true` only when the expression yields `TRUE`
/// (NULL and `FALSE` both reject the row, per SQL).
///
/// # Errors
///
/// Returns [`EvalError`] if the expression yields a non-boolean value or
/// fails to evaluate.
pub fn eval_predicate<R: RowSource>(expr: &Expr, row: &R) -> Result<bool, EvalError> {
    match eval_scalar(expr, row)?.as_deref() {
        None => Ok(false),
        Some(AttrValue::Bool(b)) => Ok(*b),
        Some(v) => Err(EvalError::TypeMismatch(format!("predicate yielded {}", v.type_name()))),
    }
}

/// Runs an aggregation program over the rows of a child table, producing the
/// attributes of the parent-zone row. Aggregates over zero contributing
/// values are omitted from the output (except `COUNT`, which yields 0).
///
/// # Errors
///
/// Returns [`EvalError`] when the program mis-types against the data — the
/// caller (the agent) drops the program's output for this round rather than
/// poisoning the hierarchy.
pub fn run_program<R: RowSource>(
    prog: &AggProgram,
    rows: &[R],
) -> Result<Vec<(String, AttrValue)>, EvalError> {
    let mut kept: Vec<&R> = Vec::with_capacity(rows.len());
    for r in rows {
        let keep = match &prog.filter {
            Some(f) => eval_predicate(f, r)?,
            None => true,
        };
        if keep {
            kept.push(r);
        }
    }

    let mut out = Vec::with_capacity(prog.selects.len());
    for item in &prog.selects {
        let value = eval_aggregate(item.func, &item.args, &kept)?;
        if let Some(v) = value {
            out.push((item.alias.clone(), v));
        }
    }
    Ok(out)
}

fn eval_aggregate<R: RowSource>(
    func: AggFn,
    args: &[Expr],
    rows: &[&R],
) -> Result<Option<AttrValue>, EvalError> {
    match func {
        AggFn::Count => Ok(Some(AttrValue::Int(rows.len() as i64))),
        AggFn::Min | AggFn::Max => {
            let mut best: Option<Cow<'_, AttrValue>> = None;
            for r in rows {
                let Some(v) = eval_scalar(&args[0], r)? else { continue };
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = v.partial_cmp_value(&b).ok_or_else(|| {
                            EvalError::TypeMismatch("mixed types under MIN/MAX".into())
                        })?;
                        let take = match func {
                            AggFn::Min => ord == std::cmp::Ordering::Less,
                            _ => ord == std::cmp::Ordering::Greater,
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.map(Cow::into_owned))
        }
        AggFn::Sum | AggFn::Avg => {
            let mut sum_i: i64 = 0;
            let mut sum_f: f64 = 0.0;
            let mut any_float = false;
            let mut n = 0u64;
            for r in rows {
                match eval_scalar(&args[0], r)?.as_deref() {
                    None => {}
                    Some(AttrValue::Int(i)) => {
                        sum_i = sum_i.saturating_add(*i);
                        sum_f += *i as f64;
                        n += 1;
                    }
                    Some(AttrValue::Float(x)) => {
                        any_float = true;
                        sum_f += x;
                        n += 1;
                    }
                    Some(v) => {
                        return Err(EvalError::TypeMismatch(format!(
                            "SUM/AVG over {}",
                            v.type_name()
                        )))
                    }
                }
            }
            if n == 0 {
                return Ok(None);
            }
            Ok(Some(match func {
                AggFn::Sum if any_float => AttrValue::Float(sum_f),
                AggFn::Sum => AttrValue::Int(sum_i),
                _ => AttrValue::Float(sum_f / n as f64),
            }))
        }
        AggFn::First => {
            for r in rows {
                if let Some(v) = eval_scalar(&args[0], r)? {
                    return Ok(Some(v.into_owned()));
                }
            }
            Ok(None)
        }
        AggFn::OrBits => {
            let mut acc: Option<filters::BitArray> = None;
            for r in rows {
                let Some(v) = eval_scalar(&args[0], r)? else { continue };
                let AttrValue::Bits(b) = &*v else {
                    return Err(EvalError::TypeMismatch(format!("ORBITS over {}", v.type_name())));
                };
                acc = Some(match acc {
                    None => b.clone(),
                    Some(mut a) => {
                        if a.len() != b.len() {
                            return Err(EvalError::BitsLenMismatch);
                        }
                        a.or_assign(b);
                        a
                    }
                });
            }
            Ok(acc.map(AttrValue::Bits))
        }
        AggFn::OrInt => {
            let mut acc: Option<i64> = None;
            for r in rows {
                let Some(v) = eval_scalar(&args[0], r)? else { continue };
                let AttrValue::Int(i) = &*v else {
                    return Err(EvalError::TypeMismatch(format!("ORINT over {}", v.type_name())));
                };
                acc = Some(acc.unwrap_or(0) | i);
            }
            Ok(acc.map(AttrValue::Int))
        }
        AggFn::Union => {
            let mut acc: Option<BTreeSet<u64>> = None;
            for r in rows {
                let Some(v) = eval_scalar(&args[0], r)? else { continue };
                let AttrValue::Set(s) = &*v else {
                    return Err(EvalError::TypeMismatch(format!("UNION over {}", v.type_name())));
                };
                acc = Some(match acc {
                    None => s.clone(),
                    Some(mut a) => {
                        a.extend(s.iter().copied());
                        a
                    }
                });
            }
            Ok(acc.map(AttrValue::Set))
        }
        AggFn::RepSel => {
            let k = match eval_scalar(&args[0], &EmptyRow)?.as_deref() {
                Some(AttrValue::Int(k)) if *k > 0 => *k as usize,
                _ => return Err(EvalError::BadRepSelK),
            };
            // Collect (score, set) per row, drop rows lacking either.
            let mut entries: Vec<(f64, BTreeSet<u64>)> = Vec::new();
            for r in rows {
                let Some(score) = eval_scalar(&args[1], r)?.and_then(|v| v.as_f64()) else {
                    continue;
                };
                let Some(v) = eval_scalar(&args[2], r)? else { continue };
                let AttrValue::Set(s) = &*v else {
                    return Err(EvalError::TypeMismatch(format!(
                        "REPSEL set argument is {}",
                        v.type_name()
                    )));
                };
                if !s.is_empty() {
                    entries.push((score, s.clone()));
                }
            }
            // Sort by score, then deterministically by smallest member.
            entries.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.iter().next().cmp(&b.1.iter().next()))
            });
            // Round-robin: take the smallest unused id from each row's set,
            // looping until k ids are chosen or the sets are exhausted. This
            // spreads representatives across child zones (paper §5: combine
            // "independent network paths" knowledge).
            let mut chosen: BTreeSet<u64> = BTreeSet::new();
            let mut progress = true;
            while chosen.len() < k && progress {
                progress = false;
                for (_, set) in &entries {
                    if chosen.len() >= k {
                        break;
                    }
                    if let Some(&id) = set.iter().find(|id| !chosen.contains(id)) {
                        chosen.insert(id);
                        progress = true;
                    }
                }
            }
            if chosen.is_empty() {
                Ok(None)
            } else {
                Ok(Some(AttrValue::Set(chosen)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::parser::{parse_predicate, parse_program};
    use crate::mib::{Mib, MibBuilder, Stamp};
    use filters::BitArray;

    fn row(pairs: &[(&str, AttrValue)]) -> Mib {
        let mut b = MibBuilder::new();
        for (k, v) in pairs {
            b.set(*k, v.clone());
        }
        b.build(Stamp::default())
    }

    fn bits(len: usize, ones: &[usize]) -> AttrValue {
        let mut b = BitArray::new(len);
        for &o in ones {
            b.set(o);
        }
        AttrValue::Bits(b)
    }

    fn set(ids: &[u64]) -> AttrValue {
        AttrValue::Set(ids.iter().copied().collect())
    }

    #[test]
    fn scalar_arithmetic_and_comparison() {
        let r = row(&[("a", AttrValue::Int(4)), ("b", AttrValue::Float(0.5))]);
        let e = parse_predicate("a * 2 + b > 8").unwrap();
        assert!(eval_predicate(&e, &r).unwrap());
        let e = parse_predicate("a / 0 = 1").unwrap();
        assert!(!eval_predicate(&e, &r).unwrap(), "div-by-zero is NULL, rejects");
    }

    #[test]
    fn null_three_valued_logic() {
        let r = row(&[("x", AttrValue::Bool(true))]);
        // missing AND true = NULL → false; missing OR true = true.
        assert!(!eval_predicate(&parse_predicate("missing = 1 AND x").unwrap(), &r).unwrap());
        assert!(eval_predicate(&parse_predicate("missing = 1 OR x").unwrap(), &r).unwrap());
    }

    #[test]
    fn string_functions() {
        let r = row(&[("s", AttrValue::from("reuters/politics"))]);
        assert!(eval_predicate(&parse_predicate("CONTAINS(s, 'politics')").unwrap(), &r).unwrap());
        assert!(eval_predicate(&parse_predicate("PREFIX(s, 'reuters')").unwrap(), &r).unwrap());
        assert!(!eval_predicate(&parse_predicate("PREFIX(s, 'ap/')").unwrap(), &r).unwrap());
    }

    #[test]
    fn coalesce_if_bit() {
        let r = row(&[("bits", bits(8, &[3]))]);
        assert!(eval_predicate(&parse_predicate("BIT(bits, 3)").unwrap(), &r).unwrap());
        assert!(!eval_predicate(&parse_predicate("BIT(bits, 4)").unwrap(), &r).unwrap());
        let v = eval_scalar(&parse_predicate("COALESCE(nope, 7)").unwrap(), &r).unwrap();
        assert_eq!(v.map(Cow::into_owned), Some(AttrValue::Int(7)));
        let v = eval_scalar(&parse_predicate("IF(BIT(bits,3), 1, 2)").unwrap(), &r).unwrap();
        assert_eq!(v.map(Cow::into_owned), Some(AttrValue::Int(1)));
    }

    #[test]
    fn unknown_function_errors() {
        let r = row(&[]);
        let err = eval_scalar(&parse_predicate("NOPE(1)").unwrap(), &r).unwrap_err();
        assert_eq!(err, EvalError::UnknownFunction("NOPE".into()));
    }

    #[test]
    fn basic_aggregates() {
        let rows = vec![
            row(&[("load", AttrValue::Float(0.5)), ("n", AttrValue::Int(2))]),
            row(&[("load", AttrValue::Float(0.2)), ("n", AttrValue::Int(3))]),
            row(&[("n", AttrValue::Int(5))]), // no load: skipped by MIN
        ];
        let p = parse_program(
            "SELECT MIN(load) AS lo, MAX(load) AS hi, SUM(n) AS n, AVG(n) AS avg, COUNT() AS c",
        )
        .unwrap();
        let out = run_program(&p, &rows).unwrap();
        let get = |k: &str| out.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(get("lo"), Some(AttrValue::Float(0.2)));
        assert_eq!(get("hi"), Some(AttrValue::Float(0.5)));
        assert_eq!(get("n"), Some(AttrValue::Int(10)));
        assert_eq!(get("c"), Some(AttrValue::Int(3)));
        assert!((get("avg").unwrap().as_f64().unwrap() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn where_filters_rows() {
        let rows = vec![
            row(&[("n", AttrValue::Int(1)), ("ok", AttrValue::Bool(true))]),
            row(&[("n", AttrValue::Int(2)), ("ok", AttrValue::Bool(false))]),
            row(&[("n", AttrValue::Int(4))]), // NULL ok → excluded
        ];
        let p = parse_program("SELECT SUM(n) AS n WHERE ok").unwrap();
        assert_eq!(run_program(&p, &rows).unwrap(), vec![("n".to_string(), AttrValue::Int(1))]);
    }

    #[test]
    fn orbits_unions_bloom_arrays() {
        let rows = vec![
            row(&[("subs", bits(16, &[1, 2]))]),
            row(&[("subs", bits(16, &[2, 9]))]),
            row(&[]),
        ];
        let p = parse_program("SELECT ORBITS(subs) AS subs").unwrap();
        let out = run_program(&p, &rows).unwrap();
        let AttrValue::Bits(b) = &out[0].1 else { panic!() };
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![1, 2, 9]);
    }

    #[test]
    fn orbits_rejects_mixed_lengths() {
        let rows = vec![row(&[("subs", bits(8, &[1]))]), row(&[("subs", bits(16, &[1]))])];
        let p = parse_program("SELECT ORBITS(subs) AS subs").unwrap();
        assert_eq!(run_program(&p, &rows).unwrap_err(), EvalError::BitsLenMismatch);
    }

    #[test]
    fn orint_and_union() {
        let rows = vec![
            row(&[("m", AttrValue::Int(0b0011)), ("ids", set(&[1, 2]))]),
            row(&[("m", AttrValue::Int(0b0110)), ("ids", set(&[3]))]),
        ];
        let p = parse_program("SELECT ORINT(m) AS m, UNION(ids) AS ids").unwrap();
        let out = run_program(&p, &rows).unwrap();
        assert_eq!(out[0].1, AttrValue::Int(0b0111));
        assert_eq!(out[1].1, set(&[1, 2, 3]));
    }

    #[test]
    fn repsel_spreads_over_best_children() {
        let rows = vec![
            row(&[("load", AttrValue::Float(0.9)), ("reps", set(&[90, 91]))]),
            row(&[("load", AttrValue::Float(0.1)), ("reps", set(&[10, 11]))]),
            row(&[("load", AttrValue::Float(0.5)), ("reps", set(&[50]))]),
        ];
        let p = parse_program("SELECT REPSEL(3, load, reps) AS reps").unwrap();
        let out = run_program(&p, &rows).unwrap();
        // One id from each row in load order: 10 (lightest), 50, 90.
        assert_eq!(out[0].1, set(&[10, 50, 90]));
    }

    #[test]
    fn repsel_round_robins_when_k_exceeds_rows() {
        let rows = vec![
            row(&[("load", AttrValue::Float(0.1)), ("reps", set(&[1, 2]))]),
            row(&[("load", AttrValue::Float(0.2)), ("reps", set(&[3]))]),
        ];
        let p = parse_program("SELECT REPSEL(3, load, reps) AS reps").unwrap();
        let out = run_program(&p, &rows).unwrap();
        assert_eq!(out[0].1, set(&[1, 2, 3]));
    }

    #[test]
    fn repsel_k_must_be_constant() {
        let rows = vec![row(&[("load", AttrValue::Float(0.1)), ("reps", set(&[1]))])];
        let p = parse_program("SELECT REPSEL(load, load, reps) AS reps").unwrap();
        assert_eq!(run_program(&p, &rows).unwrap_err(), EvalError::BadRepSelK);
    }

    #[test]
    fn empty_aggregates_are_omitted_but_count_stays() {
        let rows: Vec<Mib> = vec![];
        let p = parse_program("SELECT MIN(load) AS lo, COUNT() AS c").unwrap();
        let out = run_program(&p, &rows).unwrap();
        assert_eq!(out, vec![("c".to_string(), AttrValue::Int(0))]);
    }

    #[test]
    fn first_takes_row_order() {
        let rows =
            vec![row(&[]), row(&[("v", AttrValue::Int(7))]), row(&[("v", AttrValue::Int(9))])];
        let p = parse_program("SELECT FIRST(v) AS v").unwrap();
        assert_eq!(run_program(&p, &rows).unwrap()[0].1, AttrValue::Int(7));
    }
}
