//! Tokenizer for the aggregation-function language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword `SELECT`.
    Select,
    /// Keyword `AS`.
    As,
    /// Keyword `WHERE`.
    Where,
    /// Keyword `AND`.
    And,
    /// Keyword `OR`.
    Or,
    /// Keyword `NOT`.
    Not,
    /// Boolean literal.
    Bool(bool),
    /// Identifier (column or function name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single-quoted, `''` escapes a quote).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `=`.
    Eq,
    /// `!=` or `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Select => write!(f, "SELECT"),
            Token::As => write!(f, "AS"),
            Token::Where => write!(f, "WHERE"),
            Token::And => write!(f, "AND"),
            Token::Or => write!(f, "OR"),
            Token::Not => write!(f, "NOT"),
            Token::Bool(b) => write!(f, "{b}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Tokenizer failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}
impl std::error::Error for LexError {}

/// Tokenizes a program; keywords are case-insensitive, identifiers keep
/// their case.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < b.len() {
        let c = b[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                pos += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                pos += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'!' => {
                if b.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(LexError { offset: pos, message: "expected `!=`".into() });
                }
            }
            b'<' => match b.get(pos + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    pos += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if b.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                let start = pos;
                pos += 1;
                loop {
                    match b.get(pos) {
                        None => {
                            return Err(LexError {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if b.get(pos + 1) == Some(&b'\'') => {
                            s.push('\'');
                            pos += 2;
                        }
                        Some(b'\'') => {
                            pos += 1;
                            break;
                        }
                        Some(_) => {
                            // Copy one UTF-8 scalar.
                            let len = match b[pos] {
                                0x00..=0x7F => 1,
                                0xC0..=0xDF => 2,
                                0xE0..=0xEF => 3,
                                _ => 4,
                            };
                            s.push_str(
                                std::str::from_utf8(&b[pos..(pos + len).min(b.len())]).map_err(
                                    |_| LexError { offset: pos, message: "invalid utf-8".into() },
                                )?,
                            );
                            pos += len;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = pos;
                let mut is_float = false;
                while pos < b.len() && (b[pos].is_ascii_digit() || b[pos] == b'.') {
                    if b[pos] == b'.' {
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    pos += 1;
                }
                let text = &src[start..pos];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("bad float literal `{text}`"),
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("bad integer literal `{text}`"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = pos;
                while pos < b.len()
                    && (b[pos].is_ascii_alphanumeric()
                        || b[pos] == b'_'
                        || b[pos] == b'$'
                        || b[pos] == b'.')
                {
                    pos += 1;
                }
                let word = &src[start..pos];
                out.push(match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Token::Select,
                    "AS" => Token::As,
                    "WHERE" => Token::Where,
                    "AND" => Token::And,
                    "OR" => Token::Or,
                    "NOT" => Token::Not,
                    "TRUE" => Token::Bool(true),
                    "FALSE" => Token::Bool(false),
                    _ => Token::Ident(word.to_owned()),
                });
            }
            other => {
                return Err(LexError {
                    offset: pos,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("select As WHERE and OR not true FALSE").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Select,
                Token::As,
                Token::Where,
                Token::And,
                Token::Or,
                Token::Not,
                Token::Bool(true),
                Token::Bool(false),
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let toks = lex("42 3.25 'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Int(42), Token::Float(3.25), Token::Str("it's".into())]);
    }

    #[test]
    fn operators() {
        let toks = lex("= != <> < <= > >= + - * / %").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn identifiers_keep_case_and_allow_dots() {
        let toks = lex("Load sys$agg.reps").unwrap();
        assert_eq!(toks, vec![Token::Ident("Load".into()), Token::Ident("sys$agg.reps".into())]);
    }

    #[test]
    fn errors_report_offset() {
        let err = lex("a ? b").unwrap_err();
        assert_eq!(err.offset, 2);
        let err = lex("'open").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn select_statement_shape() {
        let toks = lex("SELECT MIN(load) AS load WHERE nmembers > 0").unwrap();
        assert_eq!(toks[0], Token::Select);
        assert!(toks.contains(&Token::Where));
        assert_eq!(toks.len(), 11);
    }
}
