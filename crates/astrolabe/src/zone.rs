//! Zone identifiers and the zone-tree layout.
//!
//! Paper §3: Astrolabe is "a collection of hierarchical database tables…
//! Each of these tables is limited to some small size (say, 64 rows); thus
//! the hierarchy may be several levels deep. We use the term zone to denote
//! one of these tables."
//!
//! A [`ZoneId`] is the path of child labels from the root. [`ZoneLayout`]
//! computes the balanced tree a deployment of `n` leaf agents occupies at a
//! given branching factor, and maps agents to leaf zones and back.

use std::fmt;
use std::sync::Arc;

/// Maximum children per zone the paper suggests (and we default to).
pub const DEFAULT_BRANCHING: u16 = 64;

/// Path-style identifier of a zone. The root is the empty path.
///
/// ```
/// use astrolabe::ZoneId;
/// let z = ZoneId::root().child(3).child(7);
/// assert_eq!(z.to_string(), "/3/7");
/// assert_eq!(z.parent(), Some(ZoneId::root().child(3)));
/// assert!(ZoneId::root().is_ancestor_of(&z));
/// ```
/// The path is frozen behind `Arc` once built: zone ids travel in every
/// gossip digest and table-rows batch, so cloning one is a refcount bump
/// rather than a heap copy. Derived comparisons and hashing see through the
/// `Arc` to the label path, so semantics are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId {
    path: Arc<[u16]>,
}

impl Default for ZoneId {
    fn default() -> Self {
        ZoneId::root()
    }
}

impl ZoneId {
    /// The root zone.
    pub fn root() -> Self {
        ZoneId { path: Arc::from([]) }
    }

    /// Builds a zone from a label path (root = empty).
    pub fn from_path(path: Vec<u16>) -> Self {
        ZoneId { path: path.into() }
    }

    /// The child of this zone with the given label.
    #[must_use]
    pub fn child(&self, label: u16) -> ZoneId {
        let mut path = Vec::with_capacity(self.path.len() + 1);
        path.extend_from_slice(&self.path);
        path.push(label);
        ZoneId { path: path.into() }
    }

    /// The parent, or `None` for the root.
    pub fn parent(&self) -> Option<ZoneId> {
        if self.path.is_empty() {
            None
        } else {
            Some(ZoneId { path: self.path[..self.path.len() - 1].into() })
        }
    }

    /// Depth below the root (root = 0).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// True for the root zone.
    pub fn is_root(&self) -> bool {
        self.path.is_empty()
    }

    /// The label path from the root.
    pub fn path(&self) -> &[u16] {
        &self.path
    }

    /// The last label (this zone's name within its parent).
    pub fn label(&self) -> Option<u16> {
        self.path.last().copied()
    }

    /// True when `self` is `other` or an ancestor of it.
    pub fn is_ancestor_of(&self, other: &ZoneId) -> bool {
        other.path.len() >= self.path.len() && other.path[..self.path.len()] == self.path[..]
    }

    /// The ancestor of this zone at `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds this zone's depth.
    pub fn ancestor_at(&self, depth: usize) -> ZoneId {
        assert!(depth <= self.depth(), "no ancestor at depth {depth}");
        ZoneId { path: self.path[..depth].into() }
    }

    /// Parses the [`Display`](fmt::Display) form back into a zone:
    /// `"/"` is the root, `"/3/7"` is label path `[3, 7]`. Returns `None`
    /// for anything that does not round-trip (missing leading slash, empty
    /// or non-numeric labels).
    pub fn parse(s: &str) -> Option<ZoneId> {
        if s == "/" {
            return Some(ZoneId::root());
        }
        let rest = s.strip_prefix('/')?;
        let path =
            rest.split('/').map(|label| label.parse::<u16>().ok()).collect::<Option<Vec<u16>>>()?;
        Some(ZoneId { path: path.into() })
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            return f.write_str("/");
        }
        for p in self.path.iter() {
            write!(f, "/{p}")?;
        }
        Ok(())
    }
}

/// The balanced layout of `n` agents in a tree of branching factor `b`.
///
/// Agents are numbered `0..n` and packed left-to-right: agent `i` lives in
/// the leaf zone whose path is the base-`b` digits of `i / b`, and occupies
/// member slot `i % b` within it.
///
/// ```
/// use astrolabe::ZoneLayout;
/// let l = ZoneLayout::new(200, 8);
/// assert_eq!(l.levels(), 2); // 8^2 = 64 < 200 <= 8^3... see docs
/// let z = l.leaf_zone(77);
/// assert!(l.members_of(&z).any(|m| m == 77));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneLayout {
    n: u32,
    branching: u16,
    levels: usize,
}

impl ZoneLayout {
    /// Computes the layout for `n` agents with the given branching factor.
    ///
    /// `levels` is the depth of leaf *zones* (the smallest `d` with
    /// `b^(d+1) >= n`, so each leaf zone holds up to `b` agents).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `branching < 2`.
    pub fn new(n: u32, branching: u16) -> Self {
        assert!(n > 0, "layout needs at least one agent");
        assert!(branching >= 2, "branching factor must be at least 2");
        let b = u64::from(branching);
        let mut levels = 0usize;
        let mut capacity = b; // capacity of a depth-`levels` leaf layout
        while capacity < u64::from(n) {
            capacity *= b;
            levels += 1;
        }
        ZoneLayout { n, branching, levels }
    }

    /// Number of agents.
    pub fn agents(&self) -> u32 {
        self.n
    }

    /// Branching factor.
    pub fn branching(&self) -> u16 {
        self.branching
    }

    /// Depth of leaf zones (0 when everyone fits in the root's one zone
    /// level).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The leaf zone agent `agent` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `agent >= n`.
    pub fn leaf_zone(&self, agent: u32) -> ZoneId {
        assert!(agent < self.n, "agent {agent} out of range");
        let b = u32::from(self.branching);
        let mut group = agent / b; // index of the leaf zone
        let mut digits = vec![0u16; self.levels];
        for d in (0..self.levels).rev() {
            digits[d] = (group % b) as u16;
            group /= b;
        }
        ZoneId::from_path(digits)
    }

    /// The member slot (row label) of `agent` within its leaf zone.
    ///
    /// # Panics
    ///
    /// Panics if `agent >= n`.
    pub fn member_slot(&self, agent: u32) -> u16 {
        assert!(agent < self.n, "agent {agent} out of range");
        (agent % u32::from(self.branching)) as u16
    }

    /// The agent occupying `slot` of `leaf`, if it exists.
    pub fn agent_at(&self, leaf: &ZoneId, slot: u16) -> Option<u32> {
        if leaf.depth() != self.levels || slot >= self.branching {
            return None;
        }
        let b = u32::from(self.branching);
        let mut group: u32 = 0;
        for &d in leaf.path() {
            if u32::from(d) >= u32::from(self.branching) {
                return None;
            }
            group = group.checked_mul(b)?.checked_add(u32::from(d))?;
        }
        let agent = group.checked_mul(b)?.checked_add(u32::from(slot))?;
        (agent < self.n).then_some(agent)
    }

    /// Iterates over the agents in leaf zone `leaf`.
    pub fn members_of<'a>(&'a self, leaf: &'a ZoneId) -> impl Iterator<Item = u32> + 'a {
        (0..self.branching).filter_map(move |s| self.agent_at(leaf, s))
    }

    /// All agents in the subtree under `zone`.
    pub fn agents_under(&self, zone: &ZoneId) -> Vec<u32> {
        let r = self.agent_range(zone);
        r.map(|r| r.collect()).unwrap_or_default()
    }

    /// The contiguous id range of agents under `zone` (the balanced layout
    /// packs subtrees contiguously), or `None` for a zone outside the tree.
    pub fn agent_range(&self, zone: &ZoneId) -> Option<std::ops::Range<u32>> {
        if zone.depth() > self.levels {
            return None;
        }
        let b = u64::from(self.branching);
        let mut base: u64 = 0;
        for &d in zone.path() {
            if self.branching <= d {
                return None;
            }
            base = base * b + u64::from(d);
        }
        // Leaf-zone indices under `zone` span [base, base+span) where
        // span = b^(levels - depth); each leaf zone holds up to b agents.
        let span = b.pow((self.levels - zone.depth()) as u32);
        let start = (base * span * b).min(u64::from(self.n)) as u32;
        let end = ((base + 1) * span * b).min(u64::from(self.n)) as u32;
        (start < end).then_some(start..end)
    }

    /// The chain of zones agent `agent` replicates tables for: its leaf zone
    /// first, then each ancestor up to the root.
    pub fn ancestor_chain(&self, agent: u32) -> Vec<ZoneId> {
        let leaf = self.leaf_zone(agent);
        let mut chain = Vec::with_capacity(self.levels + 1);
        for d in (0..=leaf.depth()).rev() {
            chain.push(leaf.ancestor_at(d));
        }
        chain
    }

    /// Child labels of `zone` that actually contain agents.
    pub fn occupied_children(&self, zone: &ZoneId) -> Vec<u16> {
        if zone.depth() >= self.levels {
            // Children of a leaf zone are member slots.
            return (0..self.branching).filter(|&s| self.agent_at(zone, s).is_some()).collect();
        }
        (0..self.branching).filter(|&c| !self.agents_under(&zone.child(c)).is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_path_algebra() {
        let root = ZoneId::root();
        assert!(root.is_root());
        assert_eq!(root.depth(), 0);
        assert_eq!(root.parent(), None);
        let z = root.child(5).child(9);
        assert_eq!(z.depth(), 2);
        assert_eq!(z.label(), Some(9));
        assert_eq!(z.ancestor_at(1), root.child(5));
        assert_eq!(z.ancestor_at(0), root);
        assert!(root.is_ancestor_of(&z));
        assert!(z.is_ancestor_of(&z));
        assert!(!z.is_ancestor_of(&root));
    }

    #[test]
    fn zone_display() {
        assert_eq!(ZoneId::root().to_string(), "/");
        assert_eq!(ZoneId::root().child(1).child(2).to_string(), "/1/2");
    }

    #[test]
    fn zone_parse_roundtrips_display() {
        for zone in [ZoneId::root(), ZoneId::from_path(vec![3]), ZoneId::from_path(vec![3, 7])] {
            assert_eq!(ZoneId::parse(&zone.to_string()), Some(zone));
        }
        for bad in ["", "3/7", "/3/", "//", "/x", "/3/70000"] {
            assert_eq!(ZoneId::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn layout_levels() {
        assert_eq!(ZoneLayout::new(5, 8).levels(), 0); // all in root's leaf table
        assert_eq!(ZoneLayout::new(8, 8).levels(), 0);
        assert_eq!(ZoneLayout::new(9, 8).levels(), 1);
        assert_eq!(ZoneLayout::new(64, 8).levels(), 1);
        assert_eq!(ZoneLayout::new(65, 8).levels(), 2);
        assert_eq!(ZoneLayout::new(100_000, 64).levels(), 2); // 64^3 = 262144
    }

    #[test]
    fn leaf_zone_roundtrip() {
        let l = ZoneLayout::new(1000, 8);
        for agent in [0u32, 1, 7, 8, 63, 64, 511, 512, 999] {
            let z = l.leaf_zone(agent);
            let slot = l.member_slot(agent);
            assert_eq!(l.agent_at(&z, slot), Some(agent), "agent {agent}");
            assert_eq!(z.depth(), l.levels());
        }
    }

    #[test]
    fn members_of_leaf_zone() {
        let l = ZoneLayout::new(20, 8);
        let z = l.leaf_zone(0);
        let members: Vec<u32> = l.members_of(&z).collect();
        assert_eq!(members, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let last = l.leaf_zone(19);
        let members: Vec<u32> = l.members_of(&last).collect();
        assert_eq!(members, vec![16, 17, 18, 19]);
    }

    #[test]
    fn ancestor_chain_runs_leaf_to_root() {
        let l = ZoneLayout::new(500, 8); // levels = 2 (8^3 = 512 >= 500)
        let chain = l.ancestor_chain(77);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0], l.leaf_zone(77));
        assert_eq!(chain[1], l.leaf_zone(77).parent().unwrap());
        assert_eq!(chain[2], ZoneId::root());
    }

    #[test]
    fn agent_range_contiguous() {
        let l = ZoneLayout::new(60, 8); // levels 1
        assert_eq!(l.agent_range(&ZoneId::root()), Some(0..60));
        assert_eq!(l.agent_range(&ZoneId::root().child(1)), Some(8..16));
        assert_eq!(l.agent_range(&ZoneId::root().child(7)), Some(56..60));
        assert_eq!(l.agent_range(&ZoneId::root().child(9)), None);
        let deep = ZoneLayout::new(500, 8); // levels 2
        assert_eq!(deep.agent_range(&ZoneId::root().child(1)), Some(64..128));
        assert_eq!(deep.agent_range(&ZoneId::root().child(1).child(2)), Some(80..88));
    }

    #[test]
    fn agents_under_subtree() {
        let l = ZoneLayout::new(60, 8); // levels = 1, zones /0../7
        let z = ZoneId::root().child(1);
        assert_eq!(l.agents_under(&z), (8..16).collect::<Vec<u32>>());
        assert_eq!(l.agents_under(&ZoneId::root()).len(), 60);
    }

    #[test]
    fn occupied_children_partial_tree() {
        let l = ZoneLayout::new(20, 8); // levels 1: zones 0,1,2 occupied
        assert_eq!(l.occupied_children(&ZoneId::root()), vec![0, 1, 2]);
        let leaf = ZoneId::root().child(2);
        assert_eq!(l.occupied_children(&leaf), vec![0, 1, 2, 3]);
    }

    #[test]
    fn agent_at_out_of_layout() {
        let l = ZoneLayout::new(10, 8);
        assert_eq!(l.agent_at(&ZoneId::root().child(1), 5), None); // only 2 agents in /1
        assert_eq!(l.agent_at(&ZoneId::root(), 0), None); // root is not a leaf zone
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_zone_bounds() {
        ZoneLayout::new(10, 8).leaf_zone(10);
    }
}
