//! A ready-made `simnet` wrapper around [`Agent`], used by the Astrolabe
//! integration tests and the convergence experiments (E6, E12).

use rand::Rng;
use simnet::{Context, Node, NodeId, Payload, SimDuration, TimerId};

use crate::agent::{Agent, GossipMsg};

impl Payload for GossipMsg {
    fn wire_size(&self) -> usize {
        GossipMsg::wire_size(self)
    }
}

const GOSSIP_TIMER: u64 = 1;

/// A simulated node running exactly one Astrolabe agent.
#[derive(Debug)]
pub struct AstroNode {
    /// The wrapped agent (exposed for inspection by tests and harnesses).
    pub agent: Agent,
}

impl AstroNode {
    /// Wraps an agent.
    pub fn new(agent: Agent) -> Self {
        AstroNode { agent }
    }

    fn flush(&self, ctx: &mut Context<'_, GossipMsg>, out: Vec<(u32, GossipMsg)>) {
        for (to, msg) in out {
            ctx.send(NodeId(to), msg);
        }
    }
}

impl Node for AstroNode {
    type Msg = GossipMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        // Desynchronize the first round across nodes, then tick periodically.
        let interval = interval_of(&self.agent);
        let first = SimDuration::from_micros(ctx.rng().gen_range(0..interval.as_micros().max(1)));
        ctx.set_timer(first, GOSSIP_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, GossipMsg>, from: NodeId, msg: GossipMsg) {
        let now = ctx.now();
        let out = self.agent.on_message(now, from.0, msg, ctx.rng());
        self.flush(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, GossipMsg>, _timer: TimerId, tag: u64) {
        if tag != GOSSIP_TIMER {
            return;
        }
        let now = ctx.now();
        let out = self.agent.on_tick(now, ctx.rng());
        self.flush(ctx, out);
        let interval = interval_of(&self.agent);
        ctx.set_timer(interval, GOSSIP_TIMER);
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        // Cold restart: rejoin with empty tables and resume gossiping.
        self.agent.reset();
        ctx.set_timer(interval_of(&self.agent), GOSSIP_TIMER);
    }
}

fn interval_of(agent: &Agent) -> SimDuration {
    agent.config().gossip_interval
}
