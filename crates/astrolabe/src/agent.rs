//! The Astrolabe agent: one per participating node.
//!
//! Each agent owns its leaf MIB row and replicates the zone tables on its
//! root path (paper §3: "like a jigsaw puzzle, each participant stores just
//! a part of the data structure, and the illusion of a tree of tables is
//! constructed at runtime through a peer-to-peer protocol").
//!
//! The agent is written *sans-IO*: [`Agent::on_tick`] and
//! [`Agent::on_message`] are pure state transitions that return an outbox of
//! `(peer, GossipMsg)` pairs. Hosts (the simnet wrapper in
//! [`crate::AstroNode`], the multicast layer in `amcast`, the full NewsWire
//! node) embed an agent and shuttle its messages, which keeps the protocol
//! testable in isolation and composable without generics gymnastics.
//!
//! # Protocol
//!
//! Anti-entropy in three hops. `A` picks, per level it represents, a peer
//! `B` in a *different* child of the level's zone and sends a digest of all
//! tables the two share (that zone and every ancestor). `B` replies with the
//! rows where it is newer plus a want-list of rows where `A` advertised
//! newer; `A` merges, then ships the wanted rows. Rows are immutable and
//! stamped `(issued, version, origin)`; newest wins everywhere, which makes
//! merging commutative, idempotent and eventually consistent.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use obs::{ctr, gauge, hist, kind, Layer};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use simnet::{PhiAccrualDetector, PhiConfig, SimTime};

use crate::agg::{parse_program, run_program, AggProgram};
use crate::config::Config;
use crate::mib::{AttrName, Mib, MibBuilder, Stamp};
use crate::table::{MergeOutcome, RowDigest, ZoneTable};
use crate::value::AttrValue;
use crate::zone::{ZoneId, ZoneLayout};

pub use crate::mib::AGG_ATTR_PREFIX;

/// Defense-in-depth bound on attributes per ingested row: honest rows carry
/// a couple of dozen attributes (locals, core aggregates, mobile code), so
/// anything past this is a memory-amplification attempt, not data.
const MAX_ROW_ATTRS: usize = 256;

/// Digest of one table for anti-entropy exchange.
///
/// The row digests are shared (`Arc`): an agent fanning the same digest out
/// to several peers in one round clones a pointer, not the stamp list.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDigest {
    /// The zone whose table is being advertised.
    pub zone: ZoneId,
    /// Per-row version stamps.
    pub rows: Arc<[RowDigest]>,
    /// Delta gossip only: table generation this digest is relative to.
    /// `0` means the digest is *full* (covers every held row — also the
    /// invariant shape when delta gossip is off); non-zero means it covers
    /// only rows changed after that generation of the sender's table.
    pub since: u64,
    /// Delta gossip only: the sender's table generation at send time, so
    /// the receiver can detect a missed delta (`since` beyond the last
    /// generation it processed) and ask for a full exchange. `0` when
    /// delta gossip is off.
    pub gen: u64,
}

/// A batch of rows from one table.
#[derive(Debug, Clone)]
pub struct TableRows {
    /// The zone whose table the rows belong to.
    pub zone: ZoneId,
    /// `(label, row)` pairs.
    pub rows: Vec<(u16, Arc<Mib>)>,
}

/// Gossip protocol messages.
#[derive(Debug, Clone)]
pub enum GossipMsg {
    /// Hop 1: advertise row versions for the shared tables.
    Digest {
        /// One digest per shared table, leaf-most first.
        digests: Vec<TableDigest>,
    },
    /// Hop 2: rows newer at the receiver, plus a want-list.
    DigestReply {
        /// Rows where the replier was newer.
        rows: Vec<TableRows>,
        /// `(zone, labels)` the replier wants.
        want: Vec<(ZoneId, Vec<u16>)>,
        /// Delta gossip only: stamp-refresh records for rows where the
        /// replier was newer but the digest's content hash proved the
        /// values identical — the receiver re-stamps in place instead of
        /// getting the row re-shipped. Always empty when delta gossip is
        /// off (zero wire cost).
        refresh: Vec<(ZoneId, Vec<(u16, Stamp)>)>,
        /// Delta gossip only: zones where the replier detected a missed
        /// delta digest and needs the sender's next digest to be full.
        /// Always empty when delta gossip is off.
        want_full: Vec<ZoneId>,
    },
    /// Hop 3: the wanted rows.
    Rows {
        /// Rows the original sender was newer on.
        rows: Vec<TableRows>,
    },
}

impl GossipMsg {
    /// Approximate wire size in bytes, for traffic accounting.
    pub fn wire_size(&self) -> usize {
        fn zone_size(z: &ZoneId) -> usize {
            2 + z.depth() * 2
        }
        fn rows_size(rs: &[TableRows]) -> usize {
            rs.iter()
                .map(|t| {
                    zone_size(&t.zone)
                        + t.rows.iter().map(|(_, r)| 2 + r.wire_size()).sum::<usize>()
                })
                .sum()
        }
        8 + match self {
            GossipMsg::Digest { digests } => digests
                .iter()
                .map(|d| {
                    // Delta-mode digests (recognizable by a non-zero
                    // generation) carry an 8-byte content hash per row on
                    // top of the 22-byte label+stamp entry, plus the
                    // since/gen pair. Off-mode digests stay at the
                    // historical 22 bytes per row.
                    let per_row = if d.gen > 0 { 30 } else { 22 };
                    let header = if d.gen > 0 { 16 } else { 0 };
                    zone_size(&d.zone) + header + d.rows.len() * per_row
                })
                .sum::<usize>(),
            GossipMsg::DigestReply { rows, want, refresh, want_full } => {
                rows_size(rows)
                    + want.iter().map(|(z, ls)| zone_size(z) + ls.len() * 2).sum::<usize>()
                    + refresh.iter().map(|(z, rs)| zone_size(z) + rs.len() * 22).sum::<usize>()
                    + want_full.iter().map(zone_size).sum::<usize>()
            }
            GossipMsg::Rows { rows } => rows_size(rows),
        }
    }
}

/// Everything [`Agent::recompute_level`] needs for one gossip round, cached
/// across rounds and invalidated by `scope_epoch`: the compiled program list
/// (configured aggregations first, then dynamic-in-scope in name order) and
/// the pre-formatted `sys$agg:` attributes that ride along in summary rows.
/// Both halves sit behind `Arc` so cloning out of the cache is two pointer
/// bumps.
#[derive(Debug, Clone)]
struct RoundState {
    programs: Arc<[Arc<AggProgram>]>,
    agg_attrs: Arc<[(AttrName, AttrValue)]>,
}

/// One cached aggregate summary (see [`Agent::recompute_level`]): the row
/// last computed over `tables[level]`, valid while the source table's
/// content generation and the mobile-code scope both stand still. Re-issuing
/// it is [`Mib::restamped`] — the attribute payload is shared, not copied.
#[derive(Debug)]
struct AggCache {
    content_gen: u64,
    epoch: u64,
    proto: Arc<Mib>,
}

/// One node's Astrolabe state machine. See the module docs for the protocol.
#[derive(Debug)]
pub struct Agent {
    id: u32,
    config: Config,
    layout: ZoneLayout,
    /// Zones whose tables this agent replicates: leaf zone first, root last.
    chain: Vec<ZoneId>,
    /// `tables[i]` is the replica for `chain[i]`.
    tables: Vec<ZoneTable>,
    own_slot: u16,
    contacts: Vec<u32>,
    version: u64,
    local: MibBuilder,
    compiled: HashMap<String, Option<Arc<AggProgram>>>,
    dynamic: BTreeMap<String, String>,
    /// Bumped whenever the inputs of [`Agent::dynamic_in_scope`] may have
    /// changed: a program install, a merge or eviction touching a row that
    /// carries `sys$agg:` attributes, or a reset. While it stands still the
    /// cached [`RoundState`] is reused, skipping the full-table rescan that
    /// used to run every round.
    scope_epoch: u64,
    scope_cache: Option<(u64, RoundState)>,
    /// Per-level digest keyed by table generation, so the several gossip
    /// fan-outs of one round share a single stamp-list allocation.
    digest_cache: Vec<Option<(u64, Arc<[RowDigest]>)>>,
    /// Scratch buffers for [`ZoneTable::diff_into`] in the digest handler.
    scratch_newer: Vec<u16>,
    scratch_missing: Vec<u16>,
    /// Per-source-level aggregate summary attributes, keyed on the source
    /// table's content generation and `scope_epoch`. In steady state rows
    /// are merely re-stamped each round, both keys stand still, and the
    /// summary is re-issued from the cache instead of re-running every
    /// aggregation program.
    agg_cache: Vec<Option<AggCache>>,
    /// Bumped whenever `local` changes; keys `own_row_cache`.
    local_gen: u64,
    /// The fully decorated own row (locals + `id`/`reps`/`nmembers`),
    /// rebuilt only when `local` changed; heartbeats re-stamp it in place.
    own_row_cache: Option<(u64, Arc<Mib>)>,
    /// Per-level gossip peer candidates, keyed on the content generations of
    /// the level's table and its parent (the two inputs of
    /// [`Agent::peers_at`]).
    peers_cache: Vec<Option<(u64, u64, Vec<u32>)>>,
    /// Per-(level, label) phi-accrual detectors, fed whenever a merged row's
    /// stamp advances. Failure detection: a row is evicted when its detector
    /// grows suspicious, not on a fixed TTL cliff. Indexed `[level][label]`
    /// (labels are bounded by the branching factor; the inner vectors grow
    /// on demand) — the gc sweep and the merge loop consult a detector per
    /// row, so this sits on the hot path where a hashed lookup showed up.
    detectors: Vec<Vec<Option<PhiAccrualDetector>>>,
    /// Stamp watermark of rows evicted on suspicion: gossip re-offering the
    /// same (or an older) stamp is refused, so an evicted member cannot be
    /// resurrected by a replica that has not evicted it yet. A genuinely
    /// alive member re-enters with its next, newer stamp.
    tombstones: HashMap<(usize, u16), u64>,
    /// This node's own incarnation number: persisted by the host and bumped
    /// on every cold restart. Carried in the own leaf row as the `incar`
    /// attribute (only when non-zero, so pre-recovery deployments gossip
    /// byte-identical rows).
    incarnation: u64,
    /// Highest incarnation observed per leaf-table label. Rows carrying an
    /// older incarnation are stale gossip from before that peer's cold
    /// restart and are fenced (dropped) regardless of stamp.
    incar_seen: HashMap<u16, u64>,
    /// Memoized `incar` attribute reads for the leaf fence, one slot per
    /// leaf label: the last row examined (the `Arc` pins its attribute
    /// allocation, so pointer identity can never alias a freed block) and
    /// its incarnation. Steady-state heartbeats share the held row's
    /// attribute allocation via [`Mib::restamped`], so the fence becomes a
    /// pointer compare instead of a per-row attribute lookup.
    incar_cache: Vec<Option<(Arc<Mib>, u64)>>,
    /// Node ids observed under a *newer* incarnation since the last drain —
    /// the host resets its own per-peer failure detectors for these (a
    /// restarted peer must be immediately selectable again, not held hostage
    /// by suspicion accrued against its previous life).
    incarnation_bumps: Vec<u32>,
    /// When set, gossiped rows are structurally validated before merging
    /// (see [`Agent::row_is_valid`]); malformed rows are rejected and
    /// counted instead of silently merged. Off by default — the bare
    /// Astrolabe protocol trusts its peers, matching the paper; hosts that
    /// face an adversarial fault model (the NewsWire node) switch it on.
    validate_ingest: bool,
    /// Delta gossip, sender side: per `(peer, level)`, the table generation
    /// covered by the last digest sent there and a countdown to the next
    /// forced full exchange. Advanced optimistically (no ack): a dropped
    /// partial digest is healed by the periodic full digest, never by
    /// retransmission.
    delta_sent: HashMap<(u32, usize), DeltaPeerState>,
    /// Delta gossip, receiver side: highest digest generation processed per
    /// `(peer, level)`. A partial digest whose `since` exceeds this means a
    /// delta was missed; the reply then carries `want_full`.
    peer_gen_seen: HashMap<(u32, usize), u64>,
}

/// Sender-side delta gossip bookkeeping for one `(peer, level)` lane.
#[derive(Debug, Clone, Copy)]
struct DeltaPeerState {
    /// Table generation the last digest to this peer covered through.
    sent_gen: u64,
    /// Digests remaining until the next forced full exchange.
    rounds_to_full: u32,
}

impl Agent {
    /// Creates the agent for node `id` in the given layout.
    ///
    /// `extra_contacts` seed discovery beyond the agent's own leaf zone
    /// (paper §8 leaves bootstrap configuration out of scope; the simulation
    /// hands every agent a few random contacts, standing in for the seed
    /// list a downloaded client would ship with).
    pub fn new(id: u32, layout: &ZoneLayout, config: Config, extra_contacts: Vec<u32>) -> Self {
        let chain = layout.ancestor_chain(id);
        let tables: Vec<ZoneTable> = chain.iter().map(|z| ZoneTable::new(z.clone())).collect();
        let mut contacts: Vec<u32> =
            layout.members_of(&layout.leaf_zone(id)).filter(|&m| m != id).collect();
        contacts.extend(extra_contacts.into_iter().filter(|&c| c != id));
        contacts.sort_unstable();
        contacts.dedup();
        let levels = tables.len();
        Agent {
            id,
            config,
            layout: layout.clone(),
            chain,
            tables,
            own_slot: layout.member_slot(id),
            contacts,
            version: 0,
            local: MibBuilder::new(),
            compiled: HashMap::new(),
            dynamic: BTreeMap::new(),
            scope_epoch: 0,
            scope_cache: None,
            digest_cache: vec![None; levels],
            scratch_newer: Vec::new(),
            scratch_missing: Vec::new(),
            agg_cache: (0..levels).map(|_| None).collect(),
            local_gen: 0,
            own_row_cache: None,
            peers_cache: vec![None; levels],
            detectors: vec![Vec::new(); levels],
            tombstones: HashMap::new(),
            incarnation: 0,
            incar_seen: HashMap::new(),
            incar_cache: Vec::new(),
            incarnation_bumps: Vec::new(),
            validate_ingest: false,
            delta_sent: HashMap::new(),
            peer_gen_seen: HashMap::new(),
        }
    }

    /// This agent's node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The agent's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The zones this agent replicates, leaf zone first, root last.
    pub fn chain(&self) -> &[ZoneId] {
        &self.chain
    }

    /// Number of replicated tables (leaf-zone table through root table).
    pub fn levels(&self) -> usize {
        self.tables.len()
    }

    /// The replica of `chain()[level]`'s table.
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn table(&self, level: usize) -> &ZoneTable {
        &self.tables[level]
    }

    /// The root table (rows summarize the top-level zones).
    pub fn root_table(&self) -> &ZoneTable {
        self.tables.last().expect("chain is never empty")
    }

    /// This agent's row label within `chain()[level]`'s table.
    pub fn own_label(&self, level: usize) -> u16 {
        if level == 0 {
            self.own_slot
        } else {
            self.chain[level - 1].label().expect("non-root chain entry has a label")
        }
    }

    /// Sets an attribute of this agent's own MIB row (takes effect at the
    /// next tick). `id`, `reps` and `nmembers` are reserved and overwritten
    /// by the agent.
    pub fn set_local_attr(&mut self, name: &str, value: impl Into<AttrValue>) {
        self.local.set(name, value.into());
        self.local_gen += 1;
    }

    /// Reads back a locally set attribute (the node's own MIB values).
    pub fn local_attr(&self, name: &str) -> Option<&AttrValue> {
        self.local.get(name)
    }

    /// Removes every locally set attribute whose name starts with `prefix`,
    /// returning how many were dropped. Hosts call this on cold restart to
    /// retract stale advertisements (anti-entropy digests, coverage claims)
    /// that describe state the restarted process no longer holds.
    pub fn remove_local_attrs(&mut self, prefix: &str) -> usize {
        let removed = self.local.remove_prefix(prefix);
        if removed > 0 {
            self.local_gen += 1;
        }
        removed
    }

    /// Sets this node's incarnation number (bumped by the host on every cold
    /// restart, persisted to stable storage). A non-zero incarnation rides in
    /// the own leaf row as the `incar` attribute; peers fence any row still
    /// carrying an older incarnation and reset their suspicion of this node.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        if self.incarnation != incarnation {
            self.incarnation = incarnation;
            self.local_gen += 1;
        }
    }

    /// This node's current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Drains the node ids observed under a newer incarnation since the last
    /// call. Hosts use this to reset per-peer failure-detector state so a
    /// freshly restarted peer is immediately eligible again (for ack
    /// forwarding, repair, gossip) instead of inheriting the suspicion its
    /// previous life accrued.
    pub fn take_incarnation_bumps(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.incarnation_bumps)
    }

    /// Enables (or disables) structural validation of gossiped rows before
    /// they are merged. See [`Agent::scrub`] for the matching self-audit
    /// sweep over rows that were admitted before validation was on.
    pub fn set_ingest_validation(&mut self, on: bool) {
        self.validate_ingest = on;
    }

    /// Installs a dynamic aggregation program (mobile code). It propagates
    /// to the rest of the system as a `sys$agg:` attribute and is evaluated
    /// by every agent that sees it.
    pub fn install_aggregation(&mut self, name: &str, program: &str) {
        self.dynamic.insert(name.to_owned(), program.to_owned());
        self.local.set(format!("{AGG_ATTR_PREFIX}{name}"), program.to_owned());
        self.scope_epoch += 1;
        self.local_gen += 1;
    }

    /// True when this agent is currently a representative of
    /// `chain()[level]` (always true for the implicit level of its own row;
    /// vacuously false for the root, which has no parent to represent it
    /// in).
    pub fn is_rep(&self, level: usize) -> bool {
        let parent = level + 1;
        if parent >= self.tables.len() {
            return false;
        }
        match self.tables[parent].get(self.own_label(parent)) {
            Some(row) => match row.get("reps") {
                Some(AttrValue::Set(s)) => s.contains(&u64::from(self.id)),
                _ => true, // no reps computed yet: bootstrap duty
            },
            None => true, // nobody summarized us yet: bootstrap duty
        }
    }

    fn bootstrap_duty(&self, level: usize) -> bool {
        let parent = level + 1;
        if parent >= self.tables.len() {
            return false;
        }
        match self.tables[parent].get(self.own_label(parent)) {
            Some(row) => row.get("reps").is_none(),
            None => true,
        }
    }

    fn next_stamp(&mut self, now: SimTime) -> Stamp {
        self.version += 1;
        Stamp { issued_us: now.as_micros(), version: self.version, origin: self.id }
    }

    fn refresh_own_row(&mut self, now: SimTime) {
        let stamp = self.next_stamp(now);
        if let Some((gen, proto)) = &self.own_row_cache {
            if *gen == self.local_gen {
                // Heartbeat of an unchanged row: re-stamp the cached row,
                // sharing its attribute allocation.
                let row = Arc::new(proto.restamped(stamp));
                self.tables[0].merge_row(self.own_slot, row);
                return;
            }
        }
        let mut b = self.local.clone();
        if b.get("load").is_none() {
            // Representative election scores on load; an agent that never
            // reported one is assumed unloaded.
            b.set("load", 0.0f64);
        }
        b.set("id", i64::from(self.id));
        if self.incarnation > 0 {
            // i64 holds microsecond incarnations for ~292k simulated years.
            b.set("incar", self.incarnation as i64);
        }
        let mut reps = std::collections::BTreeSet::new();
        reps.insert(u64::from(self.id));
        b.set("reps", AttrValue::Set(reps));
        b.set("nmembers", 1i64);
        let row = Arc::new(Mib::new(stamp, b.into_attrs()));
        self.own_row_cache = Some((self.local_gen, Arc::clone(&row)));
        self.tables[0].merge_row(self.own_slot, row);
    }

    /// Tuning for the per-row failure detectors, derived from the gossip
    /// cadence: generous floors so multi-hop propagation jitter does not
    /// read as failure, while a genuinely silent row is suspected within a
    /// few rounds instead of a fixed multi-round TTL.
    fn phi_config(&self) -> PhiConfig {
        PhiConfig {
            window: self.config.phi_window,
            threshold: self.config.phi_threshold,
            first_interval: self.config.gossip_interval * 2,
            min_stddev: self.config.gossip_interval,
        }
    }

    /// Failure detection sweep: evict rows whose phi detector has crossed
    /// the suspicion threshold, plus (backstop) rows past the hard TTL whose
    /// cadence was never observed. Evicted stamps are tombstoned so stale
    /// replicas cannot resurrect them.
    fn gc(&mut self, now: SimTime) {
        let hard_cutoff = now.as_micros().saturating_sub(self.config.row_ttl.as_micros());
        for level in 0..self.tables.len() {
            let keep = self.own_label(level);
            let lane = &self.detectors[level];
            let suspects: Vec<(u16, u64, bool)> = self.tables[level]
                .iter()
                .filter(|&(label, row)| {
                    label != keep
                        && match lane.get(usize::from(label)).and_then(Option::as_ref) {
                            Some(d) => d.is_suspect(now) || row.stamp.issued_us < hard_cutoff,
                            None => row.stamp.issued_us < hard_cutoff,
                        }
                })
                .map(|(label, row)| (label, row.stamp.issued_us, row.carries_mobile_code()))
                .collect();
            for (label, issued_us, carried_agg) in suspects {
                self.tables[level].remove(label);
                if let Some(d) = self.detectors[level].get_mut(usize::from(label)) {
                    *d = None;
                }
                self.tombstones.insert((level, label), issued_us);
                if carried_agg {
                    self.scope_epoch += 1;
                }
            }
        }
    }

    /// All dynamic programs visible in any replicated table (union of
    /// `sys$agg:` attributes), plus locally installed ones.
    fn dynamic_in_scope(&self) -> BTreeMap<String, String> {
        let mut progs = self.dynamic.clone();
        for table in &self.tables {
            for (_, row) in table.iter() {
                for (name, value) in row.attrs() {
                    if let Some(short) = name.strip_prefix(AGG_ATTR_PREFIX) {
                        if let AttrValue::Str(src) = value {
                            progs.entry(short.to_owned()).or_insert_with(|| src.clone());
                        }
                    }
                }
            }
        }
        progs
    }

    /// The per-round aggregation inputs, rebuilt only when `scope_epoch`
    /// moved since the cached copy was made.
    fn round_state(&mut self) -> RoundState {
        if let Some((epoch, rs)) = &self.scope_cache {
            if *epoch == self.scope_epoch {
                return rs.clone();
            }
        }
        let dynamic = self.dynamic_in_scope();
        let mut programs: Vec<Arc<AggProgram>> = Vec::new();
        for a in &self.config.aggregations {
            if let Some(p) = compile_cached(&mut self.compiled, &a.program) {
                programs.push(p);
            }
        }
        for src in dynamic.values() {
            if let Some(p) = compile_cached(&mut self.compiled, src) {
                programs.push(p);
            }
        }
        let agg_attrs: Vec<(AttrName, AttrValue)> = dynamic
            .iter()
            .map(|(name, src)| {
                (AttrName::from(format!("{AGG_ATTR_PREFIX}{name}")), AttrValue::Str(src.clone()))
            })
            .collect();
        let rs = RoundState { programs: programs.into(), agg_attrs: agg_attrs.into() };
        self.scope_cache = Some((self.scope_epoch, rs.clone()));
        rs
    }

    fn recompute_level(&mut self, level: usize, now: SimTime, rs: &RoundState) {
        let parent = level + 1;
        if parent >= self.tables.len() {
            return;
        }
        if !(self.is_rep(level) || self.bootstrap_duty(level)) {
            return;
        }

        let label = self.own_label(parent);
        let content = self.tables[level].content_generation();
        let cached = match &self.agg_cache[level] {
            Some(c) if c.content_gen == content && c.epoch == self.scope_epoch => {
                Some(Arc::clone(&c.proto))
            }
            _ => None,
        };
        if let Some(proto) = cached {
            // Source rows were only re-stamped since the last round: the
            // summary values are unchanged, so re-issue the cached row under
            // a fresh stamp without re-running the programs (and without
            // copying or re-measuring its attributes).
            obs::metric_add!(self.id, ctr::AGG_CACHE_HITS, 1);
            let stamp = self.next_stamp(now);
            self.tables[parent].merge_row(label, Arc::new(proto.restamped(stamp)));
            return;
        }

        obs::metric_add!(self.id, ctr::AGG_RECOMPUTES, 1);
        let mut out = MibBuilder::new();
        let rows = self.tables[level].rows();
        for prog in rs.programs.iter() {
            match run_program(prog, rows) {
                Ok(attrs) => {
                    for (name, value) in attrs {
                        out.set(name, value);
                    }
                }
                Err(_) => {
                    // A mis-typed (possibly hostile) mobile program must not
                    // poison the hierarchy; skip its output this round.
                }
            }
        }
        // Mobile code rides along in the summary row.
        for (name, src) in rs.agg_attrs.iter() {
            out.set(Arc::clone(name), src.clone());
        }

        let stamp = self.next_stamp(now);
        let row = Arc::new(Mib::new(stamp, out.into_attrs()));
        self.agg_cache[level] = Some(AggCache {
            content_gen: content,
            epoch: self.scope_epoch,
            proto: Arc::clone(&row),
        });
        self.tables[parent].merge_row(label, row);
    }

    /// Candidate gossip targets at `level`: node ids advertised in `reps`
    /// attributes of rows other than this agent's own, plus this agent's
    /// *co-representatives* — the other members of `reps` in the parent
    /// table's summary of this zone. Co-reps live in sibling leaf zones of
    /// the same interior zone, so gossiping with them is what knits the
    /// interior table together when no configured contact happens to land
    /// there.
    /// [`Agent::peers_at`] behind a content-generation cache: the candidate
    /// list is a pure function of the `reps` attributes at `level` and its
    /// parent, so it is rebuilt only when either table's *values* changed.
    fn peers_cached(&mut self, level: usize) -> &[u32] {
        let gen = self.tables[level].content_generation();
        let parent_gen = self.tables.get(level + 1).map_or(u64::MAX, ZoneTable::content_generation);
        let stale = !matches!(
            &self.peers_cache[level],
            Some((g, p, _)) if *g == gen && *p == parent_gen
        );
        if stale {
            let peers = self.peers_at(level);
            self.peers_cache[level] = Some((gen, parent_gen, peers));
        } else {
            obs::metric_add!(self.id, ctr::PEERS_CACHE_HITS, 1);
        }
        match &self.peers_cache[level] {
            Some((_, _, peers)) => peers,
            None => unreachable!("cache entry was just populated"),
        }
    }

    fn peers_at(&self, level: usize) -> Vec<u32> {
        let own = self.own_label(level);
        let mut out = Vec::new();
        for (label, row) in self.tables[level].iter() {
            if label == own {
                continue;
            }
            if let Some(AttrValue::Set(s)) = row.get("reps") {
                out.extend(s.iter().filter_map(|&v| u32::try_from(v).ok()));
            }
        }
        let parent = level + 1;
        if parent < self.tables.len() {
            if let Some(row) = self.tables[parent].get(self.own_label(parent)) {
                if let Some(AttrValue::Set(s)) = row.get("reps") {
                    out.extend(s.iter().filter_map(|&v| u32::try_from(v).ok()));
                }
            }
        }
        out.retain(|&p| p != self.id);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn digests_from(&mut self, level: usize, peer: u32) -> Vec<TableDigest> {
        if !self.config.delta_gossip {
            return (level..self.tables.len())
                .map(|i| TableDigest {
                    zone: self.tables[i].zone.clone(),
                    rows: self.digest_at(i),
                    since: 0,
                    gen: 0,
                })
                .collect();
        }
        let mut out = Vec::with_capacity(self.tables.len() - level);
        for i in level..self.tables.len() {
            let gen = self.tables[i].generation();
            // Full digest when: first contact with this peer on this lane,
            // the periodic safety-net exchange is due, the peer asked for
            // one (missed delta), or our table generation regressed past
            // the marker (reset/restart) — a partial against a vanished
            // baseline would advertise nothing.
            let state = self.delta_sent.get(&(peer, i)).copied();
            let full = match state {
                None => true,
                Some(s) => s.rounds_to_full == 0 || s.sent_gen > gen,
            };
            if full {
                if state.is_some() {
                    obs::metric_add!(self.id, ctr::GOSSIP_FULL_FALLBACKS, 1);
                }
                self.delta_sent.insert(
                    (peer, i),
                    DeltaPeerState {
                        sent_gen: gen,
                        rounds_to_full: crate::config::DELTA_FULL_EXCHANGE_PERIOD - 1,
                    },
                );
                out.push(TableDigest {
                    zone: self.tables[i].zone.clone(),
                    rows: self.digest_at(i),
                    since: 0,
                    gen,
                });
            } else {
                let s = state.expect("partial digest requires prior state");
                let rows: Arc<[RowDigest]> = self.tables[i].digest_since(s.sent_gen).into();
                self.delta_sent.insert(
                    (peer, i),
                    DeltaPeerState { sent_gen: gen, rounds_to_full: s.rounds_to_full - 1 },
                );
                // An empty partial digest advertises nothing and triggers
                // nothing — skip it (the marker above still advanced, which
                // is correct: nothing changed, so nothing was skipped).
                if !rows.is_empty() {
                    obs::metric_add!(self.id, ctr::GOSSIP_DELTA_DIGESTS, 1);
                    out.push(TableDigest {
                        zone: self.tables[i].zone.clone(),
                        rows,
                        since: s.sent_gen,
                        gen,
                    });
                }
            }
        }
        out
    }

    /// The digest of `tables[i]`, reusing the cached copy while the table's
    /// generation stands still (typically across the 2-4 fan-outs of one
    /// gossip round).
    fn digest_at(&mut self, i: usize) -> Arc<[RowDigest]> {
        let generation = self.tables[i].generation();
        if let Some((g, d)) = &self.digest_cache[i] {
            if *g == generation {
                obs::metric_add!(self.id, ctr::DIGEST_CACHE_HITS, 1);
                return Arc::clone(d);
            }
        }
        let d: Arc<[RowDigest]> = self.tables[i].digest().into();
        self.digest_cache[i] = Some((generation, Arc::clone(&d)));
        d
    }

    /// One gossip round: refresh the local row, evict stale rows, recompute
    /// aggregates, and pick anti-entropy partners. Returns the outbox.
    pub fn on_tick(&mut self, now: SimTime, rng: &mut SmallRng) -> Vec<(u32, GossipMsg)> {
        self.refresh_own_row(now);
        self.gc(now);
        let rs = self.round_state();
        for level in 0..self.tables.len() {
            self.recompute_level(level, now, &rs);
        }

        let mut out = Vec::new();
        for level in 0..self.tables.len() {
            // Members always gossip their leaf-zone table; higher tables are
            // gossiped by the zone's representatives (plus bootstrap duty).
            let eligible = level == 0 || self.is_rep(level - 1) || self.bootstrap_duty(level - 1);
            if !eligible {
                continue;
            }
            let choice = self.peers_cached(level).choose(rng).copied();
            let target = match choice {
                Some(p) => Some(p),
                None if level == 0 || self.tables[level].len() <= 1 => {
                    // Discovery fallback: ping a bootstrap contact. Any agent
                    // shares at least the root table with us.
                    self.contacts.as_slice().choose(rng).copied()
                }
                None => None,
            };
            if let Some(peer) = target {
                out.push((peer, GossipMsg::Digest { digests: self.digests_from(level, peer) }));
            }
        }
        // Anti-clique measure: the peer selection above only reaches nodes
        // already present in the tables (or, for co-reps, in possibly
        // *diverged* aggregate rows), so two halves of a zone that
        // bootstrapped independently can each elect their own
        // representatives, keep reissuing their own aggregate row — which
        // always outstamps the foreign one locally — and never merge.
        // Break the symmetry from outside the gossip state: each tick, pick
        // one level and gossip with a uniformly random member of that zone,
        // derived from the static layout. (Real Astrolabe gets this from
        // its join/configuration machinery, which the paper scopes out;
        // see DESIGN.md bootstrap substitution.)
        let bridge_level = rand::Rng::gen_range(rng, 0..self.tables.len());
        if let Some(range) = self.layout.agent_range(&self.chain[bridge_level]) {
            let peer = rand::Rng::gen_range(rng, range.clone());
            if peer != self.id {
                out.push((
                    peer,
                    GossipMsg::Digest { digests: self.digests_from(bridge_level, peer) },
                ));
            }
        }
        // Also keep pinging configured contacts occasionally (join seeds).
        if rand::Rng::gen_bool(rng, 0.25) {
            if let Some(&peer) = self.contacts.as_slice().choose(rng) {
                out.push((peer, GossipMsg::Digest { digests: self.digests_from(0, peer) }));
            }
        }
        if obs::ENABLED {
            let rows_held: usize = self.tables.iter().map(ZoneTable::len).sum();
            obs::metric_add!(self.id, ctr::GOSSIP_ROUNDS, 1);
            obs::metric_add!(self.id, ctr::GOSSIP_DIGESTS_SENT, out.len());
            obs::gauge_set!(self.id, gauge::ASTRO_ROWS_HELD, rows_held);
            obs::trace_event!(self.id, Layer::Astro, kind::GOSSIP_ROUND, rows_held, out.len());
            for (_, msg) in &out {
                obs::hist_record!(self.id, hist::GOSSIP_DIGEST_BYTES, msg.wire_size());
            }
        }
        out
    }

    /// Merges a batch of rows; returns how many rows changed local state.
    ///
    /// Two classes of stale row are rejected outright: rows older than the
    /// hard TTL, and rows at or below a tombstoned stamp (evicted here on
    /// suspicion). Without this, a row evicted locally would be resurrected
    /// by the next gossip exchange with a replica that had not evicted it
    /// yet, and a failed member would never leave the membership. Each
    /// admitted stamp advance also feeds the row's phi detector — gossip
    /// *is* the heartbeat.
    fn merge_rows(&mut self, now: SimTime, batches: &[TableRows]) -> usize {
        let ttl = self.config.row_ttl.as_micros();
        let cutoff = now.as_micros().saturating_sub(ttl);
        let phi_config = self.phi_config();
        let mut changed = 0;
        for batch in batches {
            let Some(level) = self.level_of(&batch.zone) else { continue };
            let own = self.own_label(level);
            for (label, row) in &batch.rows {
                if self.validate_ingest && !self.row_is_valid(now, level, *label, row) {
                    obs::metric_add!(self.id, ctr::CORRUPT_ROWS_REJECTED, 1);
                    obs::trace_event!(
                        self.id,
                        Layer::Astro,
                        kind::CORRUPT_ROW_REJECT,
                        level,
                        *label
                    );
                    continue;
                }
                if row.stamp.issued_us < cutoff {
                    continue;
                }
                // Guard the lookup: the tombstone set is empty in a healthy
                // system, and this test runs once per row of every batch.
                if !self.tombstones.is_empty() {
                    if let Some(&watermark) = self.tombstones.get(&(level, *label)) {
                        if row.stamp.issued_us <= watermark {
                            continue;
                        }
                    }
                }
                // Incarnation fence (leaf rows only — that is where nodes
                // publish `incar`): a row from before the peer's last cold
                // restart is dropped outright, and the first row of a *newer*
                // incarnation resets the peer's suspicion state so it is
                // selectable again within one gossip round.
                if level == 0 && *label != own {
                    let slot_idx = usize::from(*label);
                    if self.incar_cache.len() <= slot_idx {
                        self.incar_cache.resize(slot_idx + 1, None);
                    }
                    let incar = match &self.incar_cache[slot_idx] {
                        Some((m, v)) if row.shares_attrs(m) => *v,
                        _ => {
                            let v =
                                row.get("incar").and_then(AttrValue::as_i64).unwrap_or(0) as u64;
                            self.incar_cache[slot_idx] = Some((Arc::clone(row), v));
                            v
                        }
                    };
                    let seen = self.incar_seen.get(label).copied().unwrap_or(0);
                    if incar < seen {
                        continue;
                    }
                    if incar > seen {
                        self.incar_seen.insert(*label, incar);
                        self.tombstones.remove(&(level, *label));
                        if let Some(d) = self.detectors[0].get_mut(usize::from(*label)) {
                            *d = None;
                        }
                        let peer =
                            row.get("id").and_then(AttrValue::as_i64).unwrap_or(-1).max(0) as u32;
                        self.incarnation_bumps.push(peer);
                        obs::metric_add!(self.id, ctr::INCARNATION_BUMPS, 1);
                        obs::trace_event!(
                            self.id,
                            Layer::Astro,
                            kind::INCARNATION_BUMP,
                            peer,
                            incar
                        );
                    }
                }
                let (advanced, old_carried_agg) =
                    match self.tables[level].merge_row_outcome(*label, Arc::clone(row)) {
                        MergeOutcome::Rejected => continue,
                        MergeOutcome::Inserted => (true, false),
                        MergeOutcome::Replaced { advanced_time, old_carried_agg } => {
                            (advanced_time, old_carried_agg)
                        }
                    };
                changed += 1;
                // An admitted row can change the mobile-code scope only when
                // the incoming or displaced version carries `sys$agg:` attrs.
                if row.carries_mobile_code() || old_carried_agg {
                    self.scope_epoch += 1;
                }
                if advanced && *label != own {
                    if !self.tombstones.is_empty() {
                        self.tombstones.remove(&(level, *label));
                    }
                    let lane = &mut self.detectors[level];
                    let slot = usize::from(*label);
                    if lane.len() <= slot {
                        lane.resize_with(slot + 1, || None);
                    }
                    lane[slot]
                        .get_or_insert_with(|| PhiAccrualDetector::new(phi_config))
                        .heartbeat(now);
                }
            }
        }
        if changed > 0 {
            obs::metric_add!(self.id, ctr::GOSSIP_ROWS_MERGED, changed);
            obs::trace_event!(self.id, Layer::Astro, kind::GOSSIP_MERGE, changed);
        }
        changed
    }

    /// Structural sanity of a gossiped row — the ingest validator behind
    /// [`Agent::set_ingest_validation`]. Checks are *shape* checks only,
    /// bounds a replica can verify locally without trusting the sender: the
    /// label must fit the zone branching factor, the stamp must not be from
    /// the future (beyond one gossip interval of slack), the attribute count
    /// must be bounded, a leaf row must carry a plausible `id`, and a
    /// claimed membership count must be positive. Value-level lies (a wrong
    /// aggregate under a legitimate stamp) are out of scope here; those are
    /// the host's self-audit problem.
    fn row_is_valid(&self, now: SimTime, level: usize, label: u16, row: &Mib) -> bool {
        if label >= self.config.branching {
            return false;
        }
        let slack = self.config.gossip_interval.as_micros();
        if row.stamp.issued_us > now.as_micros().saturating_add(slack) {
            return false;
        }
        if row.len() > MAX_ROW_ATTRS {
            return false;
        }
        if let Some(v) = row.get("nmembers") {
            if !matches!(v.as_i64(), Some(n) if n >= 1) {
                return false;
            }
        }
        if level == 0 {
            let Some(id) = row.get("id").and_then(AttrValue::as_i64) else { return false };
            if id < 0 || id > i64::from(u32::MAX) {
                return false;
            }
        }
        true
    }

    /// Self-audit sweep: evicts held rows (never the agent's own) that fail
    /// the structural validator of [`Agent::set_ingest_validation`]. The
    /// target is corruption anti-entropy cannot see: a row scrambled in
    /// place under its original stamp matches every replica's digest, so no
    /// peer ever re-offers the intact bytes. Evicting the row makes the
    /// label *missing* here, and the next digest exchange re-fetches the
    /// good row from any neighbor. Deliberately no tombstone — the intact
    /// row carries the very stamp a tombstone would fence out. Returns how
    /// many rows were evicted.
    pub fn scrub(&mut self, now: SimTime) -> u64 {
        let mut evicted = 0u64;
        for level in 0..self.tables.len() {
            let own = self.own_label(level);
            let bad: Vec<(u16, bool)> = self.tables[level]
                .iter()
                .filter(|&(label, row)| label != own && !self.row_is_valid(now, level, label, row))
                .map(|(label, row)| (label, row.carries_mobile_code()))
                .collect();
            for (label, carried_agg) in bad {
                self.tables[level].remove(label);
                if let Some(d) = self.detectors[level].get_mut(usize::from(label)) {
                    *d = None;
                }
                if carried_agg {
                    self.scope_epoch += 1;
                }
                evicted += 1;
            }
        }
        if evicted > 0 {
            obs::metric_add!(self.id, ctr::SELF_AUDIT_REPAIRS, evicted);
            // a=1: zone-table scrub repair site (hosts use other codes).
            obs::trace_event!(self.id, Layer::Astro, kind::SELF_AUDIT_REPAIR, 1, evicted);
        }
        evicted
    }

    /// Fault injection: scrambles up to `n` randomly chosen held rows
    /// (never the agent's own) *in place*, keeping each row's stamp so the
    /// corruption is invisible to digest-driven anti-entropy. The scramble
    /// is structural — the `id` attribute vanishes and `nmembers` goes
    /// negative — so the ingest validator and [`Agent::scrub`] can detect
    /// it; all other attributes (including mobile code) are preserved.
    /// Returns how many rows were actually changed.
    pub fn corrupt_rows(&mut self, rng: &mut SmallRng, n: u32) -> u64 {
        let mut candidates: Vec<(usize, u16)> = Vec::new();
        for level in 0..self.tables.len() {
            let own = self.own_label(level);
            candidates.extend(
                self.tables[level].iter().filter(|&(l, _)| l != own).map(|(l, _)| (level, l)),
            );
        }
        candidates.shuffle(rng);
        candidates.truncate(n as usize);
        let mut scrambled = 0u64;
        for (level, label) in candidates {
            let old = Arc::clone(self.tables[level].get(label).expect("candidate row is held"));
            let mut attrs: Vec<(AttrName, AttrValue)> =
                old.attrs().iter().filter(|(name, _)| name.as_ref() != "id").cloned().collect();
            attrs.push((AttrName::from("nmembers"), AttrValue::Int(-1)));
            if self.tables[level].force_replace(label, Arc::new(Mib::new(old.stamp, attrs))) {
                scrambled += 1;
            }
        }
        scrambled
    }

    /// Index of `zone` within this agent's chain, if replicated here.
    pub fn level_of(&self, zone: &ZoneId) -> Option<usize> {
        let depth = zone.depth();
        let leaf_depth = self.chain[0].depth();
        if depth > leaf_depth {
            return None;
        }
        let level = leaf_depth - depth;
        (self.chain[level] == *zone).then_some(level)
    }

    /// Handles an incoming gossip message; returns the outbox.
    pub fn on_message(
        &mut self,
        now: SimTime,
        from: u32,
        msg: GossipMsg,
        _rng: &mut SmallRng,
    ) -> Vec<(u32, GossipMsg)> {
        match msg {
            GossipMsg::Digest { digests } => {
                obs::trace_event!(self.id, Layer::Astro, kind::GOSSIP_DIGEST, from, digests.len());
                if self.config.delta_gossip {
                    return self.on_delta_digest(now, from, &digests);
                }
                let mut reply_rows = Vec::new();
                let mut want = Vec::new();
                // Reuse the scratch buffers across digests; the want-list
                // steals `missing` only when non-empty, so in steady state
                // (replicas in sync) this arm allocates nothing.
                let mut newer = std::mem::take(&mut self.scratch_newer);
                let mut missing = std::mem::take(&mut self.scratch_missing);
                for d in &digests {
                    let Some(level) = self.level_of(&d.zone) else { continue };
                    self.tables[level].diff_into(&d.rows, &mut newer, &mut missing);
                    if !newer.is_empty() {
                        let rows = newer
                            .iter()
                            .filter_map(|&l| self.tables[level].get(l).map(|r| (l, Arc::clone(r))))
                            .collect();
                        reply_rows.push(TableRows { zone: d.zone.clone(), rows });
                    }
                    if !missing.is_empty() {
                        want.push((d.zone.clone(), std::mem::take(&mut missing)));
                    }
                }
                self.scratch_newer = newer;
                self.scratch_missing = missing;
                if obs::ENABLED {
                    let sent: usize = reply_rows.iter().map(|t| t.rows.len()).sum();
                    let wanted: usize = want.iter().map(|(_, ls)| ls.len()).sum();
                    if sent + wanted > 0 {
                        obs::metric_add!(self.id, ctr::GOSSIP_DIFF_ROWS, sent + wanted);
                        obs::hist_record!(self.id, hist::GOSSIP_DIFF_ROWS, sent + wanted);
                        obs::trace_event!(self.id, Layer::Astro, kind::GOSSIP_DIFF, sent, wanted);
                    }
                }
                if reply_rows.is_empty() && want.is_empty() {
                    Vec::new()
                } else {
                    vec![(
                        from,
                        GossipMsg::DigestReply {
                            rows: reply_rows,
                            want,
                            refresh: Vec::new(),
                            want_full: Vec::new(),
                        },
                    )]
                }
            }
            GossipMsg::DigestReply { rows, want, refresh, want_full } => {
                self.merge_rows(now, &rows);
                self.apply_refresh_batches(now, &refresh);
                for zone in &want_full {
                    // The peer missed a delta: drop the lane state so our
                    // next digest to it is full.
                    if let Some(level) = self.level_of(zone) {
                        self.delta_sent.remove(&(from, level));
                    }
                }
                let mut send = Vec::new();
                for (zone, labels) in &want {
                    let Some(level) = self.level_of(zone) else { continue };
                    let rows = labels
                        .iter()
                        .filter_map(|&l| self.tables[level].get(l).map(|r| (l, Arc::clone(r))))
                        .collect::<Vec<_>>();
                    if !rows.is_empty() {
                        send.push(TableRows { zone: zone.clone(), rows });
                    }
                }
                if send.is_empty() {
                    Vec::new()
                } else {
                    vec![(from, GossipMsg::Rows { rows: send })]
                }
            }
            GossipMsg::Rows { rows } => {
                self.merge_rows(now, &rows);
                Vec::new()
            }
        }
    }

    /// Delta-gossip handling of an incoming digest (hop 1, delta arm).
    ///
    /// Differences from the classic path: digest entries carry content
    /// hashes, so a hash match lets this replica adopt a newer stamp
    /// straight from the digest (no want, no row transfer) and lets the
    /// reply ship 22-byte refresh records instead of full rows where this
    /// replica is newer on stamp but identical on values. Partial digests
    /// (`since > 0`) only speak for the rows they list — the reverse sweep
    /// over unlisted held rows applies to full digests alone — and a
    /// partial whose baseline we never saw triggers a `want_full` request.
    fn on_delta_digest(
        &mut self,
        now: SimTime,
        from: u32,
        digests: &[TableDigest],
    ) -> Vec<(u32, GossipMsg)> {
        let mut reply_rows = Vec::new();
        let mut want = Vec::new();
        let mut refresh = Vec::new();
        let mut want_full = Vec::new();
        for d in digests {
            let Some(level) = self.level_of(&d.zone) else { continue };
            if d.since > 0 {
                let seen = self.peer_gen_seen.get(&(from, level)).copied().unwrap_or(0);
                if seen < d.since {
                    // We missed the delta(s) between `seen` and `since`
                    // (or never exchanged with this peer): rows changed in
                    // that window are not in this digest. Ask for a full
                    // exchange; still process what *is* listed.
                    want_full.push(d.zone.clone());
                }
            }
            let seen = self.peer_gen_seen.entry((from, level)).or_insert(0);
            *seen = (*seen).max(d.gen);
            let own = self.own_label(level);
            let mut newer_full = Vec::new();
            let mut newer_refresh = Vec::new();
            let mut missing = Vec::new();
            let mut adopted = 0u64;
            let mut adopted_saved = 0u64;
            for e in d.rows.iter() {
                match self.tables[level].get(e.label) {
                    None => missing.push(e.label),
                    Some(row) => {
                        let held_stamp = row.stamp;
                        let held_hash = row.content_hash();
                        let held_wire = row.wire_size();
                        if e.stamp > held_stamp {
                            if e.chash == held_hash
                                && e.label != own
                                && self.apply_refresh(now, level, e.label, e.stamp)
                            {
                                // Heartbeat re-stamp of content we hold:
                                // adopted from the digest itself, saving the
                                // want + full-row round trip.
                                adopted += 1;
                                adopted_saved += (held_wire + 2).saturating_sub(8) as u64;
                            } else {
                                missing.push(e.label);
                            }
                        } else if held_stamp > e.stamp {
                            if e.chash == held_hash {
                                newer_refresh.push((e.label, held_stamp));
                            } else {
                                newer_full.push(e.label);
                            }
                        }
                    }
                }
            }
            if d.since == 0 {
                // Full digest: rows we hold that the peer did not list are
                // unknown to it — ship them whole.
                for (label, _) in self.tables[level].iter() {
                    if d.rows.iter().all(|e| e.label != label) {
                        newer_full.push(label);
                    }
                }
                newer_full.sort_unstable();
                newer_full.dedup();
            }
            if adopted > 0 {
                obs::metric_add!(self.id, ctr::GOSSIP_REFRESH_ROWS, adopted);
                obs::metric_add!(self.id, ctr::GOSSIP_REFRESH_BYTES_SAVED, adopted_saved);
            }
            if !newer_full.is_empty() {
                let rows = newer_full
                    .iter()
                    .filter_map(|&l| self.tables[level].get(l).map(|r| (l, Arc::clone(r))))
                    .collect();
                reply_rows.push(TableRows { zone: d.zone.clone(), rows });
            }
            if !newer_refresh.is_empty() {
                if obs::ENABLED {
                    let saved: usize = newer_refresh
                        .iter()
                        .filter_map(|&(l, _)| self.tables[level].get(l))
                        .map(|r| (r.wire_size() + 2).saturating_sub(22))
                        .sum();
                    obs::metric_add!(self.id, ctr::GOSSIP_REFRESH_ROWS, newer_refresh.len());
                    obs::metric_add!(self.id, ctr::GOSSIP_REFRESH_BYTES_SAVED, saved);
                }
                refresh.push((d.zone.clone(), newer_refresh));
            }
            if !missing.is_empty() {
                want.push((d.zone.clone(), missing));
            }
        }
        if obs::ENABLED {
            let sent: usize = reply_rows.iter().map(|t| t.rows.len()).sum();
            let wanted: usize = want.iter().map(|(_, ls)| ls.len()).sum();
            if sent + wanted > 0 {
                obs::metric_add!(self.id, ctr::GOSSIP_DIFF_ROWS, sent + wanted);
                obs::hist_record!(self.id, hist::GOSSIP_DIFF_ROWS, sent + wanted);
                obs::trace_event!(self.id, Layer::Astro, kind::GOSSIP_DIFF, sent, wanted);
            }
        }
        if reply_rows.is_empty() && want.is_empty() && refresh.is_empty() && want_full.is_empty() {
            Vec::new()
        } else {
            vec![(from, GossipMsg::DigestReply { rows: reply_rows, want, refresh, want_full })]
        }
    }

    /// Applies stamp-refresh batches from a digest reply (delta gossip).
    fn apply_refresh_batches(&mut self, now: SimTime, batches: &[(ZoneId, Vec<(u16, Stamp)>)]) {
        for (zone, records) in batches {
            let Some(level) = self.level_of(zone) else { continue };
            let own = self.own_label(level);
            let mut applied = 0u64;
            let mut saved = 0u64;
            for &(label, stamp) in records {
                if label == own {
                    continue;
                }
                if self.apply_refresh(now, level, label, stamp) {
                    applied += 1;
                    if obs::ENABLED {
                        if let Some(r) = self.tables[level].get(label) {
                            saved += (r.wire_size() + 2).saturating_sub(22) as u64;
                        }
                    }
                }
            }
            if applied > 0 {
                obs::metric_add!(self.id, ctr::GOSSIP_REFRESH_ROWS, applied);
                obs::metric_add!(self.id, ctr::GOSSIP_REFRESH_BYTES_SAVED, saved);
            }
        }
    }

    /// Re-stamps a held row in place, mirroring every admission fence of
    /// [`Agent::merge_rows`] for the content-unchanged case: TTL cutoff,
    /// tombstone watermark, the future-stamp bound when ingest validation
    /// is on, and the phi heartbeat on success (a refresh *is* the
    /// heartbeat, no less than a full row).
    fn apply_refresh(&mut self, now: SimTime, level: usize, label: u16, stamp: Stamp) -> bool {
        let cutoff = now.as_micros().saturating_sub(self.config.row_ttl.as_micros());
        if stamp.issued_us < cutoff {
            return false;
        }
        if self.validate_ingest {
            let slack = self.config.gossip_interval.as_micros();
            if stamp.issued_us > now.as_micros().saturating_add(slack) {
                return false;
            }
        }
        if !self.tombstones.is_empty() {
            if let Some(&watermark) = self.tombstones.get(&(level, label)) {
                if stamp.issued_us <= watermark {
                    return false;
                }
            }
        }
        if !self.tables[level].restamp(label, stamp) {
            return false;
        }
        if !self.tombstones.is_empty() {
            self.tombstones.remove(&(level, label));
        }
        let phi_config = self.phi_config();
        let lane = &mut self.detectors[level];
        let slot = usize::from(label);
        if lane.len() <= slot {
            lane.resize_with(slot + 1, || None);
        }
        lane[slot].get_or_insert_with(|| PhiAccrualDetector::new(phi_config)).heartbeat(now);
        true
    }

    /// Evaluates an ad-hoc aggregation program against this agent's replica
    /// of `zone`'s table — the interactive data-mining read path of §3
    /// (distinct from [`Agent::install_aggregation`], which changes what the
    /// whole system computes continuously).
    ///
    /// Returns `None` when the agent does not replicate `zone`.
    ///
    /// # Errors
    ///
    /// Propagates parse errors in `program`; evaluation type errors surface
    /// as the evaluator's error.
    pub fn query(
        &self,
        zone: &ZoneId,
        program: &str,
    ) -> Option<Result<Vec<(String, AttrValue)>, String>> {
        let level = self.level_of(zone)?;
        let prog = match parse_program(program) {
            Ok(p) => p,
            Err(e) => return Some(Err(e.to_string())),
        };
        Some(run_program(&prog, self.tables[level].rows()).map_err(|e| e.to_string()))
    }

    /// Clears all replicated state except identity (cold restart).
    pub fn reset(&mut self) {
        for t in &mut self.tables {
            *t = ZoneTable::new(t.zone.clone());
        }
        self.version = 0;
        self.detectors.iter_mut().for_each(Vec::clear);
        self.tombstones.clear();
        self.incar_seen.clear();
        self.incar_cache.clear();
        self.incarnation_bumps.clear();
        // Table generations restart at zero, so cached digests, summaries
        // and peer lists keyed on the old counters must go; the mobile-code
        // scope shrank to the locally installed programs, so the round state
        // must be rebuilt too. (The own-row cache survives: `local` did not
        // change.)
        self.digest_cache.fill(None);
        self.agg_cache.iter_mut().for_each(|c| *c = None);
        self.peers_cache.fill(None);
        self.scope_epoch += 1;
        self.scope_cache = None;
        // Delta-gossip lanes reference the old generation counters on both
        // sides; a partial digest against a pre-reset baseline would be
        // silently wrong, so force full exchanges all around.
        self.delta_sent.clear();
        self.peer_gen_seen.clear();
    }

    /// Current phi suspicion level for the row at `(level, label)`, if a
    /// detector has observed it (diagnostics and host-layer reuse).
    pub fn suspicion(&self, level: usize, label: u16, now: SimTime) -> Option<f64> {
        self.detectors
            .get(level)
            .and_then(|lane| lane.get(usize::from(label)))
            .and_then(Option::as_ref)
            .map(|d| d.phi(now))
    }
}

/// Compiles `src`, caching the result (including failures, so a bad mobile
/// program is not re-parsed every round). A free function rather than a
/// method so callers can hold other `Agent` fields borrowed.
fn compile_cached(
    cache: &mut HashMap<String, Option<Arc<AggProgram>>>,
    src: &str,
) -> Option<Arc<AggProgram>> {
    if let Some(hit) = cache.get(src) {
        return hit.clone();
    }
    let parsed = parse_program(src).ok().map(Arc::new);
    cache.insert(src.to_owned(), parsed.clone());
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{fork, SimDuration};

    fn small_config() -> Config {
        Config {
            branching: 4,
            gossip_interval: SimDuration::from_secs(1),
            row_ttl: SimDuration::from_secs(20),
            // Pinned so unit tests measure the same wire format regardless
            // of the ambient NEWSWIRE_DELTAS switch; the delta path is
            // covered explicitly by the make_delta_agents tests.
            delta_gossip: false,
            ..Config::standard()
        }
    }

    /// Drives a set of agents through synchronous rounds with perfect
    /// message delivery — a harness for protocol-logic tests (network
    /// effects are covered by the simnet-based integration tests).
    fn run_rounds(agents: &mut [Agent], rounds: usize, start: u64) -> u64 {
        let mut rng = fork(42, 0);
        let mut t = start;
        for _ in 0..rounds {
            t += 1_000_000;
            let now = SimTime::from_micros(t);
            let mut inflight: Vec<(u32, u32, GossipMsg)> = Vec::new();
            for a in agents.iter_mut() {
                for (to, m) in a.on_tick(now, &mut rng) {
                    inflight.push((a.id(), to, m));
                }
            }
            // Deliver to fixpoint within the round.
            while let Some((from, to, msg)) = inflight.pop() {
                let Some(b) = agents.iter_mut().find(|a| a.id() == to) else { continue };
                for (to2, m2) in b.on_message(now, from, msg, &mut rng) {
                    inflight.push((to, to2, m2));
                }
            }
        }
        t
    }

    fn make_agents(n: u32, branching: u16) -> Vec<Agent> {
        let layout = ZoneLayout::new(n, branching);
        let mut config = small_config();
        config.branching = branching;
        (0..n)
            .map(|i| {
                // Give everyone one global contact (agent 0) for discovery.
                Agent::new(i, &layout, config.clone(), vec![0])
            })
            .collect()
    }

    fn make_delta_agents(n: u32, branching: u16) -> Vec<Agent> {
        let layout = ZoneLayout::new(n, branching);
        let mut config = small_config();
        config.branching = branching;
        config.delta_gossip = true;
        (0..n).map(|i| Agent::new(i, &layout, config.clone(), vec![0])).collect()
    }

    #[test]
    fn delta_gossip_converges_like_full() {
        let mut agents = make_delta_agents(12, 4);
        run_rounds(&mut agents, 12, 0);
        for a in &agents {
            let total: i64 = a
                .root_table()
                .iter()
                .filter_map(|(_, r)| r.get("nmembers").and_then(|v| v.as_i64()))
                .sum();
            assert_eq!(total, 12, "agent {} sees nmembers {total}", a.id());
        }
    }

    #[test]
    fn delta_digest_goes_partial_then_full_on_generation_gap() {
        let mut agents = make_delta_agents(2, 4);
        let t = run_rounds(&mut agents, 4, 0);
        let (left, right) = agents.split_at_mut(1);
        let (a, b) = (&mut left[0], &mut right[0]);
        let mut rng = fork(7, 0);

        a.delta_sent.clear(); // normalize: next digest to b is full
        let full = a.digests_from(0, b.id());
        assert!(full.iter().all(|d| d.since == 0), "first digest after reset is full");
        assert!(full.iter().all(|d| d.gen > 0), "delta digests carry the generation");

        // Change a's table, build a partial digest... and lose it.
        a.refresh_own_row(SimTime::from_micros(t + 1_000_000));
        let lost = a.digests_from(0, b.id());
        assert!(lost.iter().all(|d| d.since > 0), "second digest is partial");

        // The next partial's baseline is a generation b never processed.
        a.refresh_own_row(SimTime::from_micros(t + 2_000_000));
        let gapped = a.digests_from(0, b.id());
        assert!(gapped.iter().all(|d| d.since > 0));
        let now = SimTime::from_micros(t + 2_000_000);
        let out = b.on_message(now, a.id(), GossipMsg::Digest { digests: gapped }, &mut rng);
        let Some((to, GossipMsg::DigestReply { want_full, .. })) = out.first() else {
            panic!("gap must produce a reply");
        };
        assert_eq!(*to, a.id());
        assert!(!want_full.is_empty(), "missed delta must request a full exchange");

        // Receiving want_full drops the lane state: next digest is full.
        let reply = out.into_iter().next().unwrap().1;
        a.on_message(now, b.id(), reply, &mut rng);
        let healed = a.digests_from(0, b.id());
        assert!(healed.iter().all(|d| d.since == 0), "want_full forces a full digest");
    }

    #[test]
    fn delta_full_exchange_period_bounds_partial_streak() {
        let mut agents = make_delta_agents(2, 4);
        let t = run_rounds(&mut agents, 4, 0);
        let a = &mut agents[0];
        a.delta_sent.clear();
        let mut fulls = 0;
        for i in 0..=crate::config::DELTA_FULL_EXCHANGE_PERIOD {
            a.refresh_own_row(SimTime::from_micros(t + u64::from(i + 1) * 1_000_000));
            let ds = a.digests_from(0, 1);
            if ds.iter().all(|d| d.since == 0) {
                fulls += 1;
            }
        }
        assert_eq!(fulls, 2, "first digest and the periodic safety net are full");
    }

    #[test]
    fn delta_digest_restamps_matching_content_in_place() {
        let mut agents = make_delta_agents(2, 4);
        let t = run_rounds(&mut agents, 4, 0);
        let (left, right) = agents.split_at_mut(1);
        let (a, b) = (&mut left[0], &mut right[0]);
        let mut rng = fork(9, 0);
        let label = a.own_label(0);

        // A heartbeat re-stamp of a's own row: same attrs, newer stamp.
        a.refresh_own_row(SimTime::from_micros(t + 1_000_000));
        let stamp = a.table(0).get(label).unwrap().stamp;
        assert!(stamp > b.table(0).get(label).unwrap().stamp);

        a.delta_sent.clear();
        let digests = a.digests_from(0, b.id());
        let now = SimTime::from_micros(t + 1_000_000);
        let out = b.on_message(now, a.id(), GossipMsg::Digest { digests }, &mut rng);
        assert_eq!(
            b.table(0).get(label).unwrap().stamp,
            stamp,
            "receiver adopts the stamp straight from the digest"
        );
        for (_, msg) in &out {
            if let GossipMsg::DigestReply { want, .. } = msg {
                assert!(
                    want.iter().all(|(_, ls)| !ls.contains(&label)),
                    "no row transfer for a content-identical re-stamp"
                );
            }
        }
    }

    #[test]
    fn single_level_converges_to_full_membership() {
        let mut agents = make_agents(4, 4); // all in the root's single leaf table
        run_rounds(&mut agents, 6, 0);
        for a in &agents {
            assert_eq!(a.levels(), 1);
            assert_eq!(a.table(0).len(), 4, "agent {} sees {} rows", a.id(), a.table(0).len());
        }
    }

    #[test]
    fn two_level_tree_aggregates_membership_count() {
        let mut agents = make_agents(12, 4); // 3 leaf zones of 4 under the root
        run_rounds(&mut agents, 12, 0);
        for a in &agents {
            assert_eq!(a.levels(), 2);
            let total: i64 = a
                .root_table()
                .iter()
                .filter_map(|(_, r)| r.get("nmembers").and_then(|v| v.as_i64()))
                .sum();
            assert_eq!(total, 12, "agent {} sees nmembers {total}", a.id());
        }
    }

    #[test]
    fn reps_elected_and_bounded() {
        let mut agents = make_agents(12, 4);
        run_rounds(&mut agents, 12, 0);
        let a = &agents[5];
        for (_, row) in a.root_table().iter() {
            let AttrValue::Set(reps) = row.get("reps").expect("reps computed") else {
                panic!("reps has wrong type")
            };
            assert!(!reps.is_empty() && reps.len() <= 2, "reps {reps:?}");
        }
        // Exactly the elected reps consider themselves representatives.
        let rep_ids: std::collections::BTreeSet<u64> =
            agents.iter().filter(|ag| ag.is_rep(0)).map(|ag| u64::from(ag.id())).collect();
        for ag in &agents {
            let parent_row = ag.table(1).get(ag.own_label(1)).unwrap();
            if let Some(AttrValue::Set(s)) = parent_row.get("reps") {
                if s.contains(&u64::from(ag.id())) {
                    assert!(rep_ids.contains(&u64::from(ag.id())));
                }
            }
        }
    }

    #[test]
    fn local_attr_aggregates_to_root() {
        let mut agents = make_agents(12, 4);
        for a in agents.iter_mut() {
            a.set_local_attr("load", 0.5f64);
        }
        agents[7].set_local_attr("load", 0.05f64);
        run_rounds(&mut agents, 12, 0);
        // MIN(load) at the root over agent 7's zone (/1) must be 0.05.
        let a = &agents[0];
        let zone_of_7 = 7 / 4; // label 1
        let row = a.root_table().get(zone_of_7 as u16).expect("zone row");
        assert_eq!(row.get("load").and_then(|v| v.as_f64()), Some(0.05));
    }

    #[test]
    fn mobile_aggregation_propagates_from_one_node() {
        let mut agents = make_agents(12, 4);
        for a in agents.iter_mut() {
            a.set_local_attr("temp", 20i64);
        }
        agents[3].set_local_attr("temp", 95i64);
        // Install MAX(temp) at a single node; the program must reach every
        // branch of the tree via gossip and take effect there.
        agents[0].install_aggregation("hot", "SELECT MAX(temp) AS hottest");
        run_rounds(&mut agents, 16, 0);
        for a in &agents {
            let max_at_root: i64 = a
                .root_table()
                .iter()
                .filter_map(|(_, r)| r.get("hottest").and_then(|v| v.as_i64()))
                .max()
                .expect("hottest computed everywhere");
            assert_eq!(max_at_root, 95, "agent {}", a.id());
        }
    }

    #[test]
    fn failure_detection_evicts_silent_member() {
        let mut agents = make_agents(8, 4);
        let t = run_rounds(&mut agents, 8, 0);
        assert!(agents[0].table(0).get(1).is_some(), "agent 1 known before failure");
        // Remove agent 1 (slot 1 of zone 0) and keep gossiping past the TTL.
        let mut survivors: Vec<Agent> = agents.into_iter().filter(|a| a.id() != 1).collect();
        run_rounds(&mut survivors, 30, t);
        let a0 = &survivors[0];
        assert!(a0.table(0).get(1).is_none(), "stale row must be evicted");
        let row = a0.root_table().get(0).expect("zone row");
        assert_eq!(row.get("nmembers").and_then(|v| v.as_i64()), Some(3));
    }

    #[test]
    fn phi_evicts_before_hard_ttl() {
        // With a 20s TTL a silent member used to linger for 20 rounds; the
        // phi detector, having learned the ~1s refresh cadence, suspects it
        // within a handful of rounds.
        let mut agents = make_agents(8, 4);
        let t = run_rounds(&mut agents, 8, 0);
        let mut survivors: Vec<Agent> = agents.into_iter().filter(|a| a.id() != 1).collect();
        let t2 = run_rounds(&mut survivors, 10, t);
        assert!(
            SimTime::from_micros(t2).since(SimTime::from_micros(t)) < small_config().row_ttl,
            "test horizon must stay inside the TTL for this to mean anything"
        );
        assert!(
            survivors[0].table(0).get(1).is_none(),
            "phi should evict the silent member before the hard TTL"
        );
        // The detector state is queryable while a row is alive.
        let a0 = &survivors[0];
        assert!(a0.suspicion(0, 2, SimTime::from_micros(t2)).is_some());
        assert!(a0.suspicion(0, 1, SimTime::from_micros(t2)).is_none(), "evicted: gone");
    }

    #[test]
    fn level_of_rejects_foreign_zones() {
        let layout = ZoneLayout::new(16, 4);
        let a = Agent::new(0, &layout, small_config(), vec![]);
        assert_eq!(a.level_of(&ZoneId::root()), Some(1));
        assert_eq!(a.level_of(&ZoneId::root().child(0)), Some(0));
        assert_eq!(a.level_of(&ZoneId::root().child(1)), None);
        assert_eq!(a.level_of(&ZoneId::root().child(0).child(0)), None);
    }

    #[test]
    fn reserved_attrs_cannot_be_spoofed() {
        let layout = ZoneLayout::new(4, 4);
        let mut a = Agent::new(2, &layout, small_config(), vec![]);
        a.set_local_attr("id", 999i64);
        a.set_local_attr("nmembers", 50i64);
        let mut rng = fork(0, 0);
        a.on_tick(SimTime::from_secs(1), &mut rng);
        let row = a.table(0).get(2).unwrap();
        assert_eq!(row.get("id").and_then(|v| v.as_i64()), Some(2));
        assert_eq!(row.get("nmembers").and_then(|v| v.as_i64()), Some(1));
    }

    #[test]
    fn reset_clears_tables_but_keeps_identity() {
        let mut agents = make_agents(4, 4);
        run_rounds(&mut agents, 4, 0);
        assert!(agents[2].table(0).len() > 1);
        agents[2].reset();
        assert_eq!(agents[2].table(0).len(), 0);
        assert_eq!(agents[2].id(), 2);
    }

    #[test]
    fn incarnation_attr_only_when_nonzero() {
        let layout = ZoneLayout::new(4, 4);
        let mut a = Agent::new(2, &layout, small_config(), vec![]);
        let mut rng = fork(0, 0);
        a.on_tick(SimTime::from_secs(1), &mut rng);
        assert!(
            a.table(0).get(2).unwrap().get("incar").is_none(),
            "incarnation 0 must not appear on the wire (legacy byte-compat)"
        );
        a.set_incarnation(77);
        assert_eq!(a.incarnation(), 77);
        a.on_tick(SimTime::from_secs(2), &mut rng);
        assert_eq!(a.table(0).get(2).unwrap().get("incar").and_then(|v| v.as_i64()), Some(77));
    }

    #[test]
    fn newer_incarnation_fences_stale_rows_and_reports_bump() {
        let mut agents = make_agents(4, 4);
        let t = run_rounds(&mut agents, 6, 0);
        assert!(agents[0].table(0).get(1).unwrap().get("incar").is_none());
        // Cold restart of agent 1: replicated state gone, incarnation bumped.
        agents[1].reset();
        agents[1].set_incarnation(t + 1);
        let t2 = run_rounds(&mut agents, 4, t);
        let row = agents[0].table(0).get(1).expect("restarted node re-joined");
        assert_eq!(row.get("incar").and_then(|v| v.as_i64()), Some((t + 1) as i64));
        let bumps = agents[0].take_incarnation_bumps();
        assert!(bumps.contains(&1), "host must observe the bump: {bumps:?}");
        assert!(agents[0].take_incarnation_bumps().is_empty(), "drain empties the list");
        // Forge a pre-restart (incarnation-0) row with an artificially newer
        // stamp: newest-wins would admit it, the incarnation fence must not.
        let mut b = MibBuilder::new();
        b.set("id", 1i64);
        let forged = Arc::new(Mib::new(
            Stamp { issued_us: t2 + 10_000_000, version: 9_999, origin: 1 },
            b.into_attrs(),
        ));
        let zone = agents[0].chain()[0].clone();
        let changed = agents[0].merge_rows(
            SimTime::from_micros(t2 + 1),
            &[TableRows { zone, rows: vec![(1, forged)] }],
        );
        assert_eq!(changed, 0, "stale-incarnation row must be fenced");
        assert!(agents[0].table(0).get(1).unwrap().get("incar").is_some());
    }

    /// A hand-crafted malformed row batch: out-of-range label, future
    /// stamp, and a leaf row with no `id`.
    fn malformed_batch(zone: ZoneId) -> GossipMsg {
        let stamp = |t: u64, o: u32| Stamp { issued_us: t, version: 1, origin: o };
        GossipMsg::Rows {
            rows: vec![TableRows {
                zone,
                rows: vec![
                    (63, Arc::new(MibBuilder::new().attr("id", 2i64).build(stamp(1_000_000, 2)))),
                    (2, Arc::new(MibBuilder::new().attr("id", 2i64).build(stamp(999_000_000, 2)))),
                    (
                        3,
                        Arc::new(MibBuilder::new().attr("load", 0.5f64).build(stamp(1_000_000, 3))),
                    ),
                ],
            }],
        }
    }

    #[test]
    fn ingest_validation_rejects_malformed_rows() {
        let layout = ZoneLayout::new(4, 4);
        let mut b = Agent::new(1, &layout, small_config(), vec![0]);
        b.set_ingest_validation(true);
        let mut rng = fork(9, 0);
        let now = SimTime::from_secs(1);
        b.on_tick(now, &mut rng);
        let held = b.table(0).len();
        b.on_message(now, 2, malformed_batch(b.chain()[0].clone()), &mut rng);
        assert_eq!(b.table(0).len(), held, "malformed rows must not merge");
        // A well-formed row from the same sender still merges.
        let good =
            Arc::new(MibBuilder::new().attr("id", 2i64).attr("nmembers", 1i64).build(Stamp {
                issued_us: 900_000,
                version: 1,
                origin: 2,
            }));
        let msg = GossipMsg::Rows {
            rows: vec![TableRows { zone: b.chain()[0].clone(), rows: vec![(2, good)] }],
        };
        b.on_message(now, 2, msg, &mut rng);
        assert_eq!(b.table(0).len(), held + 1, "validation must not block honest rows");
    }

    #[test]
    fn validation_off_admits_what_validation_on_rejects() {
        // Control for the test above: the same malformed batch merges when
        // validation is off (the pre-hardening behavior), so the test is
        // exercising the validator and not some other fence.
        let layout = ZoneLayout::new(4, 4);
        let mut b = Agent::new(1, &layout, small_config(), vec![0]);
        let mut rng = fork(9, 0);
        let now = SimTime::from_secs(1);
        b.on_tick(now, &mut rng);
        let held = b.table(0).len();
        b.on_message(now, 2, malformed_batch(b.chain()[0].clone()), &mut rng);
        assert!(b.table(0).len() > held, "without validation the malformed rows merge");
    }

    #[test]
    fn scrub_evicts_in_place_corruption_and_gossip_reheals() {
        let mut agents = make_agents(4, 4);
        let t = run_rounds(&mut agents, 6, 0);
        let now = SimTime::from_micros(t);
        assert_eq!(agents[0].table(0).len(), 4);
        assert_eq!(agents[0].scrub(now), 0, "healthy state needs no repair");

        let mut rng = fork(5, 1);
        let hit = agents[0].corrupt_rows(&mut rng, 2);
        assert_eq!(hit, 2);
        let evicted = agents[0].scrub(now);
        assert_eq!(evicted, hit, "scrub evicts exactly the scrambled rows");
        assert_eq!(agents[0].table(0).len(), 2);

        // The evicted labels are missing (not tombstoned), so anti-entropy
        // re-learns the intact rows from any neighbor.
        let t = run_rounds(&mut agents, 4, t);
        assert_eq!(agents[0].table(0).len(), 4);
        for (_, row) in agents[0].table(0).iter() {
            assert!(row.get("id").is_some(), "re-learned rows are intact");
        }
        assert_eq!(agents[0].scrub(SimTime::from_micros(t)), 0);
    }

    #[test]
    fn adhoc_query_over_replicas() {
        let mut agents = make_agents(12, 4);
        for (i, a) in agents.iter_mut().enumerate() {
            a.set_local_attr("temp", i as i64 * 10);
        }
        run_rounds(&mut agents, 12, 0);
        let a = &agents[0];
        // Query the leaf-zone table (members 0..4).
        let out = a
            .query(&a.chain()[0].clone(), "SELECT MAX(temp) AS t, COUNT() AS n")
            .expect("replicated")
            .expect("evaluates");
        let get = |k: &str| out.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(get("t"), Some(AttrValue::Int(30)));
        assert_eq!(get("n"), Some(AttrValue::Int(4)));
        // Root query over zone summaries.
        let out = a.query(&ZoneId::root(), "SELECT SUM(nmembers) AS n").unwrap().unwrap();
        assert_eq!(out[0].1, AttrValue::Int(12));
        // Foreign zone: not replicated here.
        assert!(a.query(&ZoneId::root().child(9), "SELECT COUNT() AS n").is_none());
        // Malformed program: error, not panic.
        assert!(a.query(&ZoneId::root(), "SELEKT").unwrap().is_err());
    }

    #[test]
    fn gossip_wire_sizes_are_positive_and_ordered() {
        let mut agents = make_agents(8, 4);
        let mut rng = fork(1, 1);
        let out = agents[0].on_tick(SimTime::from_secs(1), &mut rng);
        assert!(!out.is_empty());
        for (_, m) in &out {
            assert!(m.wire_size() > 8);
        }
        // Delta gossip may legitimately shrink a round to a digest-only
        // exchange, but never to a free one.
        let mut agents = make_delta_agents(8, 4);
        let mut rng = fork(1, 1);
        let out = agents[0].on_tick(SimTime::from_secs(1), &mut rng);
        assert!(!out.is_empty());
        for (_, m) in &out {
            assert!(m.wire_size() > 0);
        }
    }
}
