//! Attribute values.
//!
//! Rows in Astrolabe tables map attribute names to typed values. The type
//! set covers what the NewsWire stack stores: numbers and strings, node-id
//! sets (multicast representatives), bit arrays (Bloom/category subscription
//! summaries), and raw bytes.

use std::collections::BTreeSet;
use std::fmt;

use filters::BitArray;

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// 64-bit signed integer (also carries category masks bit-wise).
    Int(i64),
    /// Double-precision float (loads, rates).
    Float(f64),
    /// UTF-8 string (names, mobile aggregation code).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A set of 64-bit ids (multicast representatives).
    Set(BTreeSet<u64>),
    /// A bit array (Bloom filters, subscription masks).
    Bits(BitArray),
    /// Opaque bytes.
    Bytes(Vec<u8>),
}

impl AttrValue {
    /// Human-readable type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Str(_) => "str",
            AttrValue::Bool(_) => "bool",
            AttrValue::Set(_) => "set",
            AttrValue::Bits(_) => "bits",
            AttrValue::Bytes(_) => "bytes",
        }
    }

    /// Numeric view: `Int` and `Float` coerce to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (exact only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Set view.
    pub fn as_set(&self) -> Option<&BTreeSet<u64>> {
        match self {
            AttrValue::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Bit-array view.
    pub fn as_bits(&self) -> Option<&BitArray> {
        match self {
            AttrValue::Bits(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes (for traffic accounting).
    pub fn wire_size(&self) -> usize {
        1 + match self {
            AttrValue::Int(_) | AttrValue::Float(_) => 8,
            AttrValue::Bool(_) => 1,
            AttrValue::Str(s) => 2 + s.len(),
            AttrValue::Set(s) => 2 + s.len() * 8,
            AttrValue::Bits(b) => 2 + b.size_bytes(),
            AttrValue::Bytes(b) => 2 + b.len(),
        }
    }

    /// Total order across values of the *same* type; numeric types compare
    /// across `Int`/`Float`. Returns `None` for incomparable types.
    pub fn partial_cmp_value(&self, other: &AttrValue) -> Option<std::cmp::Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Bytes(a), Bytes(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Str(s) => write!(f, "{s:?}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Set(s) => {
                let items: Vec<String> = s.iter().take(8).map(|v| v.to_string()).collect();
                let more = if s.len() > 8 { ",…" } else { "" };
                write!(f, "{{{}{more}}}", items.join(","))
            }
            AttrValue::Bits(b) => write!(f, "{b}"),
            AttrValue::Bytes(b) => write!(f, "bytes[{}]", b.len()),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<BitArray> for AttrValue {
    fn from(v: BitArray) -> Self {
        AttrValue::Bits(v)
    }
}
impl From<BTreeSet<u64>> for AttrValue {
    fn from(v: BTreeSet<u64>) -> Self {
        AttrValue::Set(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(AttrValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AttrValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Int(3).as_bool(), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        use std::cmp::Ordering::*;
        assert_eq!(AttrValue::Int(2).partial_cmp_value(&AttrValue::Float(2.5)), Some(Less));
        assert_eq!(AttrValue::Float(3.0).partial_cmp_value(&AttrValue::Int(3)), Some(Equal));
        assert_eq!(AttrValue::from("a").partial_cmp_value(&AttrValue::from("b")), Some(Less));
        assert_eq!(AttrValue::from("a").partial_cmp_value(&AttrValue::Int(1)), None);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(AttrValue::Int(1).wire_size(), 9);
        assert_eq!(AttrValue::from("abc").wire_size(), 6);
        let set: BTreeSet<u64> = [1, 2].into_iter().collect();
        assert_eq!(AttrValue::from(set).wire_size(), 19);
    }

    #[test]
    fn display_compact() {
        let set: BTreeSet<u64> = [3, 1].into_iter().collect();
        assert_eq!(AttrValue::from(set).to_string(), "{1,3}");
        assert_eq!(AttrValue::Int(-4).to_string(), "-4");
        assert_eq!(AttrValue::from("hi").to_string(), "\"hi\"");
        assert_eq!(AttrValue::Bytes(vec![1, 2, 3]).to_string(), "bytes[3]");
    }

    #[test]
    fn type_names() {
        assert_eq!(AttrValue::Int(0).type_name(), "int");
        assert_eq!(AttrValue::Bits(BitArray::new(8)).type_name(), "bits");
    }
}
