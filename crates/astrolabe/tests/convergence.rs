//! Integration tests: full Astrolabe deployments on the network simulator.

use astrolabe::{Agent, AstroNode, AttrValue, Config, ZoneLayout};
use simnet::{
    fork, LatencyModel, NetworkModel, NodeId, Partition, SimDuration, SimTime, Simulation,
};

fn build_sim(
    n: u32,
    branching: u16,
    net: NetworkModel,
    seed: u64,
) -> (Simulation<AstroNode>, ZoneLayout) {
    let layout = ZoneLayout::new(n, branching);
    let mut config = Config::standard();
    config.branching = branching;
    let mut contact_rng = fork(seed, 999);
    let mut sim = Simulation::new(net, seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..config.contact_fanout)
            .map(|_| rand::Rng::gen_range(&mut contact_rng, 0..n))
            .collect();
        sim.add_node(AstroNode::new(Agent::new(i, &layout, config.clone(), contacts)));
    }
    (sim, layout)
}

fn root_members(sim: &Simulation<AstroNode>, node: u32) -> i64 {
    sim.node(NodeId(node))
        .agent
        .root_table()
        .iter()
        .filter_map(|(_, row)| row.get("nmembers").and_then(|v| v.as_i64()))
        .sum()
}

#[test]
fn three_level_tree_converges_within_tens_of_seconds() {
    // 100 nodes, branching 5 → leaf zones at depth 2 (5^3 = 125 ≥ 100).
    let (mut sim, _) = build_sim(100, 5, NetworkModel::default(), 11);
    sim.run_until(SimTime::from_secs(60));
    for probe in [0u32, 37, 99] {
        assert_eq!(root_members(&sim, probe), 100, "node {probe} root view");
    }
}

#[test]
fn converges_on_lossy_wan() {
    let regions: Vec<u32> = (0..60).map(|i| i / 15).collect();
    let net = NetworkModel::wan(regions, 0.05);
    let (mut sim, _) = build_sim(60, 4, net, 13);
    sim.run_until(SimTime::from_secs(90));
    assert_eq!(root_members(&sim, 5), 60);
    assert_eq!(root_members(&sim, 59), 60);
}

#[test]
fn crashed_nodes_vanish_from_membership() {
    let (mut sim, _) = build_sim(32, 4, NetworkModel::default(), 17);
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(root_members(&sim, 0), 32);
    // Crash four nodes in one zone; after the TTL their rows are evicted.
    for i in 8..12 {
        sim.schedule_crash(SimTime::from_secs(40), NodeId(i));
    }
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(root_members(&sim, 0), 28, "failed members must be forgotten");
}

#[test]
fn recovered_node_rejoins() {
    let (mut sim, _) = build_sim(16, 4, NetworkModel::default(), 19);
    sim.schedule_crash(SimTime::from_secs(30), NodeId(7));
    sim.schedule_recover(SimTime::from_secs(100), NodeId(7));
    sim.run_until(SimTime::from_secs(80));
    assert_eq!(root_members(&sim, 0), 15, "node 7 evicted while down");
    sim.run_until(SimTime::from_secs(160));
    assert_eq!(root_members(&sim, 0), 16, "node 7 back after recovery");
}

#[test]
fn partition_heals_eventually_consistent() {
    let (mut sim, _) = build_sim(24, 4, NetworkModel::default(), 23);
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(root_members(&sim, 0), 24);
    // Cut the network between the first 12 and the last 12 agents.
    sim.schedule_partition(SimTime::from_secs(40), Some(Partition::split_at(24, 12)));
    sim.run_until(SimTime::from_secs(120));
    let left = root_members(&sim, 0);
    let right = root_members(&sim, 23);
    assert!(left <= 12, "left side sees {left}");
    assert!(right <= 12, "right side sees {right}");
    // Heal; both sides converge back to the full view.
    sim.schedule_partition(SimTime::from_secs(120), None);
    sim.run_until(SimTime::from_secs(220));
    assert_eq!(root_members(&sim, 0), 24);
    assert_eq!(root_members(&sim, 23), 24);
}

#[test]
fn attribute_minimum_reaches_every_node() {
    let (mut sim, _) = build_sim(48, 4, NetworkModel::default(), 29);
    for i in 0..48 {
        sim.node_mut(NodeId(i)).agent.set_local_attr("load", 0.5 + f64::from(i) / 100.0);
    }
    sim.node_mut(NodeId(33)).agent.set_local_attr("load", 0.01);
    sim.run_until(SimTime::from_secs(60));
    for probe in [0u32, 20, 47] {
        let min: f64 = sim
            .node(NodeId(probe))
            .agent
            .root_table()
            .iter()
            .filter_map(|(_, r)| r.get("load").and_then(|v| v.as_f64()))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, 0.01, "node {probe} sees global min load");
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |seed: u64| {
        let (mut sim, _) = build_sim(20, 4, NetworkModel::default(), seed);
        sim.run_until(SimTime::from_secs(50));
        let snapshot: Vec<Vec<(u16, u64)>> = (0..20)
            .map(|i| {
                sim.node(NodeId(i))
                    .agent
                    .root_table()
                    .iter()
                    .map(|(l, r)| (l, r.stamp.issued_us))
                    .collect()
            })
            .collect();
        (snapshot, sim.total_counters().msgs_sent)
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5).1, run(6).1);
}

#[test]
fn gossip_traffic_per_node_stays_bounded() {
    let horizon = 60u64;
    let (mut sim, _) = build_sim(64, 8, NetworkModel::default(), 31);
    sim.run_until(SimTime::from_secs(horizon));
    let total = sim.total_counters();
    let per_node_per_sec = total.bytes_sent as f64 / 64.0 / horizon as f64;
    // Sanity bound: a few KB/s per node at this scale, not megabytes.
    assert!(per_node_per_sec < 50_000.0, "gossip costs {per_node_per_sec} B/s/node");
    assert!(per_node_per_sec > 10.0, "gossip suspiciously idle");
}

#[test]
fn mobile_code_installs_cluster_wide_on_simnet() {
    let (mut sim, _) = build_sim(20, 4, NetworkModel::default(), 37);
    // Multi-level idiom: the alias matches the source attribute, so the
    // program composes up the tree (leaf qmax -> zone qmax -> root qmax),
    // exactly like the core `MIN(load) AS load`.
    for i in 0..20 {
        sim.node_mut(NodeId(i)).agent.set_local_attr("qmax", i64::from(i) % 7);
    }
    sim.node_mut(NodeId(13)).agent.install_aggregation("q", "SELECT MAX(qmax) AS qmax");
    sim.run_until(SimTime::from_secs(80));
    for probe in [0u32, 9, 19] {
        let qmax = sim
            .node(NodeId(probe))
            .agent
            .root_table()
            .iter()
            .filter_map(|(_, r)| r.get("qmax").and_then(|v| v.as_i64()))
            .max();
        assert_eq!(qmax, Some(6), "node {probe} runs the installed program");
    }
}

#[test]
fn zoned_wan_latency_model_still_converges() {
    let regions: Vec<u32> = (0..40).map(|i| i / 10).collect();
    let net = NetworkModel {
        latency: LatencyModel::ZonedWan {
            region_of: regions,
            intra: (SimDuration::from_millis(2), SimDuration::from_millis(10)),
            inter: (SimDuration::from_millis(100), SimDuration::from_millis(300)),
        },
        drop_prob: 0.0,
        ..NetworkModel::default()
    };
    let (mut sim, _) = build_sim(40, 4, net, 41);
    sim.run_until(SimTime::from_secs(60));
    assert_eq!(root_members(&sim, 0), 40);
}

#[test]
fn reps_attribute_present_in_every_summary() {
    let (mut sim, _) = build_sim(30, 4, NetworkModel::default(), 43);
    sim.run_until(SimTime::from_secs(60));
    let agent = &sim.node(NodeId(4)).agent;
    for level in 1..agent.levels() {
        for (label, row) in agent.table(level).iter() {
            match row.get("reps") {
                Some(AttrValue::Set(s)) => {
                    assert!(!s.is_empty() && s.len() <= 2, "level {level} row {label}: {s:?}")
                }
                other => panic!("level {level} row {label} reps = {other:?}"),
            }
        }
    }
}

#[test]
fn dead_representative_is_replaced() {
    // §10's "node failure & automatic zone reconfiguration": when an
    // elected representative dies, the aggregation re-elects a live one
    // within the failure-detection horizon.
    let (mut sim, _) = build_sim(32, 4, NetworkModel::default(), 47);
    sim.run_until(SimTime::from_secs(50));
    // The representatives of zone /0 as seen at the root from node 16.
    let reps_of = |sim: &Simulation<AstroNode>, probe: u32| -> Vec<u64> {
        match sim.node(NodeId(probe)).agent.root_table().get(0).and_then(|r| r.get("reps")) {
            Some(AttrValue::Set(s)) => s.iter().copied().collect(),
            _ => Vec::new(),
        }
    };
    let before = reps_of(&sim, 16);
    assert!(!before.is_empty(), "zone /0 has representatives");
    let victim = before[0] as u32;
    sim.schedule_crash(SimTime::from_secs(50), NodeId(victim));
    sim.run_until(SimTime::from_secs(160));
    let after = reps_of(&sim, 16);
    assert!(!after.is_empty(), "zone /0 re-elected representatives");
    assert!(
        !after.contains(&u64::from(victim)),
        "dead node {victim} still listed as representative: {after:?}"
    );
    // And membership reflects the loss.
    assert_eq!(root_members(&sim, 16), 31);
}
