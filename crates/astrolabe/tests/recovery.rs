//! Recovery and churn behaviour of `AstroNode` deployments.

use astrolabe::{Agent, AstroNode, Config, ZoneLayout};
use rand::Rng;
use simnet::{fork, NetworkModel, NodeId, SimTime, Simulation};

fn build(n: u32, seed: u64) -> Simulation<AstroNode> {
    let layout = ZoneLayout::new(n, 4);
    let mut config = Config::standard();
    config.branching = 4;
    let mut contact_rng = fork(seed, 99);
    let mut sim = Simulation::new(NetworkModel::default(), seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        sim.add_node(AstroNode::new(Agent::new(i, &layout, config.clone(), contacts)));
    }
    sim
}

fn members(sim: &Simulation<AstroNode>, probe: u32) -> i64 {
    sim.node(NodeId(probe))
        .agent
        .root_table()
        .iter()
        .filter_map(|(_, r)| r.get("nmembers").and_then(|v| v.as_i64()))
        .sum()
}

#[test]
fn cold_restart_rebuilds_all_tables() {
    let mut sim = build(24, 1);
    sim.run_until(SimTime::from_secs(50));
    assert_eq!(members(&sim, 7), 24);
    // Crash node 7; its replicas are wiped on recovery.
    sim.schedule_crash(SimTime::from_secs(50), NodeId(7));
    sim.schedule_recover(SimTime::from_secs(55), NodeId(7));
    // 1 ms after recovery no gossip can have arrived yet (10 ms latency):
    // the node's replicas must be empty — a genuine cold restart.
    sim.run_until(SimTime::from_micros(55_001_000));
    assert_eq!(members(&sim, 7), 0, "fresh tables after restart");
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(members(&sim, 7), 24, "restart rejoins and reconverges");
}

#[test]
fn rolling_churn_keeps_survivor_view_accurate() {
    let mut sim = build(32, 2);
    sim.run_until(SimTime::from_secs(50));
    // A rolling wave: every 10 s one node dies, recovering 40 s later.
    for (i, v) in (8u32..16).enumerate() {
        let down = 50 + 10 * i as u64;
        sim.schedule_crash(SimTime::from_secs(down), NodeId(v));
        sim.schedule_recover(SimTime::from_secs(down + 40), NodeId(v));
    }
    // After the wave passes and a convergence tail, the view is complete.
    sim.run_until(SimTime::from_secs(300));
    for probe in [0u32, 15, 31] {
        assert_eq!(members(&sim, probe), 32, "probe {probe}");
    }
}

#[test]
fn half_network_failure_detected_and_reabsorbed() {
    let mut sim = build(16, 3);
    sim.run_until(SimTime::from_secs(50));
    for v in 8..16 {
        sim.schedule_crash(SimTime::from_secs(50), NodeId(v));
    }
    sim.run_until(SimTime::from_secs(140));
    assert_eq!(members(&sim, 0), 8, "dead half evicted");
    for v in 8..16 {
        sim.schedule_recover(SimTime::from_secs(140), NodeId(v));
    }
    sim.run_until(SimTime::from_secs(260));
    assert_eq!(members(&sim, 0), 16, "recovered half reabsorbed");
    assert_eq!(members(&sim, 12), 16, "rejoiner sees everyone");
}
