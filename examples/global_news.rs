//! The general-news configuration (paper §10's second target: Reuters, AP,
//! The New York Times): a WAN-structured deployment demonstrating scoped
//! regional publishing (§8: "disseminate localized news items in Asia") and
//! SQL subscription predicates (§8).
//!
//! Run with: `cargo run --release --example global_news [seed]`

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::SimTime;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(11);
    let mut config = NewsWireConfig::global_news();
    // Premium tier: a SUM(premium) aggregation lets publishers target
    // paying subscribers only (the §8 extension).
    config
        .astrolabe
        .aggregations
        .push(astrolabe::AggSpec::new("premium", "SELECT SUM(premium) AS premium"));
    let mut deployment = DeploymentBuilder::new(200, seed)
        .branching(8)
        .config(config)
        .wan(0.01) // regioned latencies + 1% loss
        .publisher(PublisherSpec::global(PublisherProfile::reuters(PublisherId(0))))
        .publisher(PublisherSpec::global({
            let mut ap = PublisherProfile::reuters(PublisherId(1));
            ap.name = "ap".into();
            ap
        }))
        .cats_per_subscriber(3)
        .build();

    println!("global news: 200 subscribers, seed {seed:#x}");
    println!("settling 90 simulated seconds on a lossy WAN…");
    deployment.settle(90);

    // --- a world-news flash, globally scoped ------------------------------
    let flash = NewsItem::builder(PublisherId(0), 0)
        .headline("Global flash")
        .category(Category::World)
        .urgency(newsml::Urgency::FLASH)
        .build();
    deployment.publish(SimTime::from_secs(90), flash.clone());
    deployment.settle(45); // includes time for cache repair to patch WAN loss
    println!(
        "global flash: {} interested, {} delivered",
        deployment.interested_nodes(&flash).len(),
        deployment.delivered_nodes(&flash).len()
    );

    // --- a regional item, scoped to one top-level zone ("Asia") -----------
    // Pick the top-level zone of some subscriber and publish only there.
    let region = deployment.layout.leaf_zone(120).ancestor_at(1);
    let inside = deployment.layout.agents_under(&region);
    let regional = NewsItem::builder(PublisherId(0), 1)
        .headline("Asia-only market update")
        .category(Category::Business)
        .build();
    let now = deployment.sim.now();
    deployment.publish_scoped(now, regional.clone(), region.clone());
    deployment.settle(25);
    let delivered = deployment.delivered_nodes(&regional);
    let leaked = delivered.iter().filter(|n| !inside.contains(&n.0)).count();
    println!(
        "regional item into zone {region}: {} delivered inside its {} nodes, {} leaked outside",
        delivered.len(),
        inside.len(),
        leaked
    );
    assert_eq!(leaked, 0, "scoped publish must stay inside the zone");

    // --- SQL predicate: urgent items only ---------------------------------
    let urgent_only = deployment
        .interested_nodes(&flash)
        .first()
        .copied()
        .expect("someone subscribes to world news");
    deployment
        .sim
        .node_mut(urgent_only)
        .subscription
        .set_predicate("urgency <= 2")
        .expect("valid SQL");
    let routine = NewsItem::builder(PublisherId(0), 2)
        .headline("Routine world roundup")
        .category(Category::World)
        .urgency(newsml::Urgency::new(6))
        .build();
    let now = deployment.sim.now();
    deployment.publish(now, routine.clone());
    deployment.settle(25);
    let node = deployment.sim.node(urgent_only);
    println!(
        "predicate subscriber {urgent_only}: delivered flash = {}, delivered routine = {} (predicate filtered {})",
        node.has_item(flash.id),
        node.has_item(routine.id),
        node.stats.predicate_filtered
    );
    assert!(!node.has_item(routine.id), "urgency predicate must filter routine items");

    // --- publisher predicate: premium subscribers only ---------------------
    let premium_nodes: Vec<simnet::NodeId> =
        (2..202).filter(|i| i % 4 == 0).map(simnet::NodeId).collect();
    for &p in &premium_nodes {
        deployment.sim.node_mut(p).agent.set_local_attr("premium", 1i64);
    }
    deployment.settle(30); // let the premium aggregation climb the tree
    let exclusive = NewsItem::builder(PublisherId(0), 3)
        .headline("Premium-only analysis")
        .category(Category::Business)
        .build();
    let now = deployment.sim.now();
    deployment.publish_with_predicate(now, exclusive.clone(), "premium > 0");
    deployment.settle(25);
    let got = deployment.delivered_nodes(&exclusive);
    let leaked = got.iter().filter(|n| !premium_nodes.contains(n)).count();
    println!("premium-only item: {} deliveries, {} to non-premium subscribers", got.len(), leaked);
    assert_eq!(leaked, 0, "publisher predicate must confine premium content");
    println!("ok");
}
