//! Telemetry dump: run a small deployment, drain the observability layer,
//! and print the deterministic JSON snapshot plus the trace-event CSV.
//!
//! The output is byte-for-byte reproducible for a given seed — CI diffs two
//! runs of this example to enforce telemetry determinism. With the `obs`
//! feature disabled (`--no-default-features`) the dump is empty but still
//! well-formed.
//!
//! Run with: `cargo run --release --example telemetry_dump [seed]`

use newsml::{Category, NewsItem, PublisherId};
use newswire::tech_news_deployment;
use simnet::SimTime;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let mut deployment = tech_news_deployment(120, seed);
    deployment.settle(60);

    for seq in 0..3u64 {
        let item = NewsItem::builder(PublisherId(0), seq)
            .headline("telemetry sample")
            .category(Category::Technology)
            .build();
        deployment.publish(SimTime::from_secs(60 + 2 * seq), item);
    }
    deployment.settle(25);

    let telemetry = deployment.sim.drain_telemetry();
    println!("{}", telemetry.to_json());
    eprintln!("--- trace events (CSV, stderr) ---");
    eprint!("{}", telemetry.events_csv());
}
