//! Cold restarts, all three flavors, in one incident: three disjoint slices
//! of the fleet churn for five minutes, each slice coming back a different
//! way — `Freeze` (the legacy model: ambient memory survives), `ColdDurable`
//! (volatile state wiped, the simulated disk survives, recovery re-derives
//! subscription/cache/logs from it), and `ColdAmnesia` (disk gone too: the
//! node re-subscribes from configuration, burns a fresh incarnation so peers
//! fence its previous life, and lets snapshot repair plus anti-entropy
//! reconciliation backfill everything it ever knew).
//!
//! Stories keep publishing throughout. At the end the invariant oracle rules
//! on duplicates and unwanted deliveries, and a completeness sweep asserts
//! every churned node — regardless of restart mode — holds every matching
//! story, i.e. eventual delivery completeness survives losing the disk.
//!
//! Run with: `cargo run --release --example cold_restart [seed]`

use std::collections::BTreeSet;

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{check_invariants, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::{ChurnSpec, FaultPlan, NodeId, RestartMode, SimTime};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xC01D);
    let subscribers = 120u32;
    let mut config = NewsWireConfig::tech_news();
    config.durable_state = true;
    let mut d = DeploymentBuilder::new(subscribers, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .publisher(PublisherSpec::global(PublisherProfile::boutique(
            PublisherId(1),
            "the-register",
            Category::Technology,
        )))
        .build();
    println!(
        "cold restart drill: {subscribers} subscribers, 2 publishers, seed {seed:#x}; \
         durable state on; letting gossip converge…"
    );
    d.settle(90);

    // Three disjoint churn groups, one per restart mode. Publishers (ids 0
    // and 1) are never churned.
    let total = subscribers + 2;
    let group =
        |rem: u32| -> Vec<NodeId> { (2..total).filter(|i| i % 6 == rem).map(NodeId).collect() };
    let frozen = group(2);
    let durable = group(3);
    let amnesic = group(4);
    let spec = |nodes: Vec<NodeId>, restart: RestartMode| ChurnSpec {
        nodes,
        start: SimTime::from_secs(90),
        end: SimTime::from_secs(390),
        mean_up_secs: 60.0,
        mean_down_secs: 20.0,
        recover_at_end: true,
        restart,
    };
    let plan = FaultPlan {
        salt: 0xC01D,
        churn: vec![
            spec(frozen.clone(), RestartMode::Freeze),
            spec(durable.clone(), RestartMode::ColdDurable),
            spec(amnesic.clone(), RestartMode::ColdAmnesia),
        ],
        gray: vec![],
        link_cuts: vec![],
        partitions: vec![],
        message_chaos: vec![],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);
    println!(
        "incident: churn 60s-up/20s-down for 5 min over {} freeze / {} cold-durable / \
         {} cold-amnesia nodes",
        frozen.len(),
        durable.len(),
        amnesic.len()
    );

    // The newsroom does not stop: a story every 20 s through the window.
    let items: Vec<NewsItem> = (0..15u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("drill minute {} story {}", s / 3, s % 3))
                .category(Category::Technology)
                .body_len(900)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + 20 * i as u64), item.clone());
    }

    // Ride out the churn plus a recovery/backfill tail.
    d.settle(660);

    let faults = d.sim.fault_counters();
    let stats = d.total_stats();
    println!(
        "engine: {} crashes / {} recoveries; protocol: {} cold restarts, \
         {} recoveries run to completion, {} items backfilled during recovery",
        faults.crashes,
        faults.recoveries,
        stats.cold_restarts,
        stats.recoveries_completed,
        stats.recovery_backfill_items
    );
    if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        println!(
            "telemetry: {} durable / {} amnesiac cold restarts, {} unsynced writes lost, \
             {} incarnation bumps observed by peers",
            hub.global().ctr(obs::ctr::COLD_RESTARTS_DURABLE),
            hub.global().ctr(obs::ctr::COLD_RESTARTS_AMNESIA),
            hub.counter_total(obs::ctr::DISK_WRITES_LOST),
            hub.counter_total(obs::ctr::INCARNATION_BUMPS),
        );
    }
    assert!(stats.cold_restarts > 0, "the drill must actually cold-restart somebody");

    // Cold-restarted nodes burned incarnations; frozen nodes never do.
    // (A lucky churner can ride out the whole window without crashing, so
    // gate on the node having actually cold-restarted.)
    for &n in durable.iter().chain(&amnesic) {
        let node = d.sim.node(n);
        if node.stats.cold_restarts > 0 {
            assert!(node.agent.incarnation() > 0, "cold node {n:?} must burn an incarnation");
        }
    }
    for &n in &frozen {
        assert_eq!(d.sim.node(n).agent.incarnation(), 0, "freeze must not burn incarnations");
    }

    // The verdict: churned nodes are exempt from the oracle's liveness
    // clause, but everyone is held to no-dup and no-unwanted.
    let exempt: BTreeSet<NodeId> = plan.churned_nodes();
    let report = check_invariants(&d, &items, &exempt);
    print!("{report}");
    report.assert_holds();

    // And the point of the drill: eventual completeness survives every
    // restart mode, including losing the disk.
    let mut missing_by_mode = [0usize; 3];
    for item in &items {
        for node in d.interested_nodes(item) {
            if !exempt.contains(&node) || d.sim.node(node).has_item(item.id) {
                continue;
            }
            let m = if frozen.contains(&node) {
                0
            } else if durable.contains(&node) {
                1
            } else {
                2
            };
            missing_by_mode[m] += 1;
        }
    }
    println!(
        "completeness: {} / {} / {} matching items missing on freeze / cold-durable / \
         cold-amnesia nodes",
        missing_by_mode[0], missing_by_mode[1], missing_by_mode[2]
    );
    assert_eq!(missing_by_mode, [0, 0, 0], "every restart mode must reach full completeness");
    println!("ok");
}
