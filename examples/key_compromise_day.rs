//! The trust root under fire: mid-run, an adversary walks out with a real
//! publisher signing key — its forged items and bogus epoch attestations
//! verify perfectly — while a Sybil burst floods fabricated identities into
//! leaf zones. The registry answers with a signed rotation record: old key
//! revoked, successor endorsed, propagated epidemically through the gossip
//! Astrolabe already sends.
//!
//! The defenses (revocation fencing on every admission path, retroactive
//! cache purge, registry-endorsed join tickets with per-zone quotas) are
//! on. After the windows close, the self-stabilization oracle rules: zero
//! forged deliveries after any node adopts the revocation, every invariant
//! restored, and the servable state scrubbed of the stolen key — the
//! exposure window is the propagation lag, nothing more.
//!
//! Run with: `cargo run --release --example key_compromise_day [seed]`

use std::collections::BTreeSet;

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{self_stabilized, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::{FaultPlan, KeyCompromiseSpec, NodeId, SimTime, SybilSpec};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0x715);
    let subscribers = 96u32;
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    config.admission = true;
    let mut d = DeploymentBuilder::new(subscribers, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    println!(
        "key-compromise day: {subscribers} subscribers, 1 publisher, seed {seed:#x}; \
         rotation fencing and Sybil admission control on; letting gossip converge…"
    );
    d.settle(90);

    // The morning stream, published under the original key.
    let mut items: Vec<NewsItem> = (0..16u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("morning dispatch {s}"))
                .category(Category::Technology)
                .body_len(700)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + i as u64), item.clone());
    }

    // The attack, declared up front: the adversary holds publisher 0's real
    // signing key from two footholds, and a Sybil striker floods fabricated
    // identities, all inside a 120 s–240 s window. The publisher (node 0)
    // is spared so ground truth stays intact.
    let (start, end) = (SimTime::from_secs(120), SimTime::from_secs(240));
    let plan = FaultPlan {
        salt: 0x715,
        key_compromise: vec![KeyCompromiseSpec {
            nodes: vec![NodeId(17), NodeId(41)],
            start,
            end,
            mean_interval_secs: 8.0,
            items_per_strike: 3,
            attest_bump: 2,
            publisher: 0,
        }],
        sybil: vec![SybilSpec {
            nodes: vec![NodeId(63)],
            start,
            end,
            mean_interval_secs: 9.0,
            identities_per_strike: 8,
            publisher: 0,
        }],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);
    println!(
        "incident: stolen publisher key wielded from 2 footholds (forged items + bogus \
         attestations that VERIFY), 1 Sybil striker fabricating identities, all 120 s–240 s"
    );

    // The registry detects the compromise mid-window and issues the signed
    // rotation: revocation seeded at the publisher plus 4 spread-out
    // subscribers, everyone else learns epidemically.
    d.schedule_rotation(SimTime::from_secs(180), PublisherId(0), 4);
    println!("response: signed rotation record injected at t=180 s (publisher + 4 seeds)");

    // The afternoon stream rides the successor key — publishing does not
    // pause for the incident.
    let post: Vec<NewsItem> = (16..24u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("afternoon dispatch {s}"))
                .category(Category::Technology)
                .body_len(700)
                .build()
        })
        .collect();
    for (i, item) in post.iter().enumerate() {
        d.publish(SimTime::from_secs(245 + i as u64), item.clone());
    }
    items.extend(post);
    d.sim.run_until(SimTime::from_secs(280));

    let faults = d.sim.fault_counters();
    println!(
        "engine: {} stolen-key strikes, {} Sybil join attempts",
        faults.key_compromise_strikes, faults.sybil_joins_attempted
    );
    assert!(faults.key_compromise_strikes > 0, "the stolen key must actually strike");
    assert!(faults.sybil_joins_attempted > 0, "the Sybil burst must actually strike");

    // The verdict: every node adopted the rotation, nothing forged was
    // delivered after any node's fence armed, and every invariant is
    // restored within a bounded number of gossip rounds. The adversary's
    // footholds are exempt from eventual delivery only — their state was
    // puppeted directly.
    let mut exempt: BTreeSet<NodeId> = plan.compromised_nodes();
    exempt.extend(plan.sybil_nodes());
    let verdict = self_stabilized(&mut d, &items, &exempt, 60);
    print!("{verdict}");
    for (id, node) in d.sim.iter() {
        assert!(node.rotation_adopted_at.is_some(), "node {id} never adopted the rotation");
    }
    assert!(
        verdict.report.no_post_revocation_delivery(),
        "no forged item may be delivered past an armed fence"
    );
    assert!(verdict.stabilized, "defenses-on run must self-stabilize within budget");
    let exposure = d.compromise_exposure_window().expect("a rotation was scheduled");
    println!(
        "exposure window: {:.1} s from revocation to fleet-wide adoption (sanctioned \
         deliveries inside it: {})",
        exposure.as_secs_f64(),
        verdict.report.compromise_exposure.len()
    );

    if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        println!(
            "telemetry: {} revocations adopted, {} revoked-key rejects across admission \
             paths, {} items retroactively purged, {} Sybil joins refused, {} identities \
             held in probation",
            hub.counter_total(obs::ctr::CERT_REVOCATIONS_SEEN),
            hub.counter_total(obs::ctr::NW_REVOKED_KEY_REJECTS),
            hub.counter_total(obs::ctr::NW_RETRO_PURGED_ITEMS),
            hub.counter_total(obs::ctr::SYBIL_JOINS_REFUSED),
            hub.counter_total(obs::ctr::NW_PROBATION_HOLDS),
        );
        assert!(
            hub.counter_total(obs::ctr::CERT_REVOCATIONS_SEEN) >= u64::from(subscribers),
            "the rotation must reach the whole fleet"
        );
        assert!(
            hub.counter_total(obs::ctr::NW_RETRO_PURGED_ITEMS) > 0,
            "the retroactive purge must have done visible work"
        );
        assert!(
            hub.counter_total(obs::ctr::SYBIL_JOINS_REFUSED) > 0,
            "admission control must have done visible work"
        );
    }
    println!("ok");
}
