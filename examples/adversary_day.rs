//! A breaking-news day with an adversary in the house: while a flash
//! crowd of stories crests and subscribers churn their subscriptions,
//! three kinds of state corruption hit mid-run — scrambled zone-table
//! replicas with zeroed subscription advertisements, article logs poisoned
//! with fabricated epochs and phantom coverage, and two representatives
//! that lie (mis-aggregating every summary they gossip).
//!
//! The defenses (gossip-ingest validation, the periodic self-audit, the
//! consensus epoch fence) are on by default. After the corruption windows
//! close, the self-stabilization oracle steps the system round by round
//! and rules: every invariant restored, bounded rounds, no scar.
//!
//! Run with: `cargo run --release --example adversary_day [seed]`

use std::collections::BTreeSet;

use baselines::{FlashCrowdSpec, SubscriptionChurnSpec};
use newswire::{self_stabilized, tech_news_deployment, Subscription};
use simnet::{
    CorruptionOp, CorruptionSpec, FaultPlan, LiarBehavior, LiarMode, LiarSpec, NodeId, SimDuration,
    SimTime,
};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xAD5);
    let subscribers = 96u32;
    let mut d = tech_news_deployment(subscribers, seed);
    println!(
        "adversary day: {subscribers} subscribers, 2 publishers, seed {seed:#x}; \
         defenses on; letting gossip converge…"
    );
    d.settle(90);

    // The attack, declared up front: two corruption campaigns and a pair
    // of liars, all inside a 120 s–240 s window. Publishers (nodes 0 and
    // 1) are spared so ground truth stays intact.
    let (start, end) = (SimTime::from_secs(120), SimTime::from_secs(240));
    let plan = FaultPlan {
        salt: 0xAD5,
        corruption: vec![
            CorruptionSpec {
                nodes: vec![NodeId(5), NodeId(29), NodeId(53)],
                start,
                end,
                mean_interval_secs: 8.0,
                op: CorruptionOp::ZoneRows { rows: 3 },
            },
            CorruptionSpec {
                nodes: vec![NodeId(11), NodeId(41)],
                start,
                end,
                mean_interval_secs: 12.0,
                op: CorruptionOp::LogEpoch { entries: 4 },
            },
        ],
        liars: vec![LiarSpec {
            nodes: vec![NodeId(17), NodeId(65)],
            start,
            end: Some(end),
            behavior: LiarBehavior { mode: LiarMode::MisSummarize, prob: 1.0 },
        }],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);
    println!(
        "incident: 3 nodes zone-row-scrambled, 2 logs epoch-poisoned, 2 liars \
         mis-aggregating, all 120 s–240 s"
    );

    // The workload does not yield to the attack. A flash crowd of 24
    // stories crests inside the corruption window…
    let burst = FlashCrowdSpec::breaking_news(SimTime::from_secs(100));
    let items: Vec<_> = (0..u64::from(burst.items))
        .map(|s| {
            newsml::NewsItem::builder(newsml::PublisherId(0), s)
                .headline(format!("flash {s}")) // distinct slugs: no revision fusion
                .category(newsml::Category::Technology)
                .body_len(900)
                .build()
        })
        .collect();
    for (at, item) in burst.schedule().into_iter().zip(items.iter()) {
        d.publish(at, item.clone());
    }
    // …while a dozen subscribers churn their subscriptions out and back.
    let churn =
        SubscriptionChurnSpec::sustained(SimTime::from_secs(130), SimTime::from_secs(230), 12);
    let originals: Vec<Subscription> =
        (0..12).map(|s| d.sim.node(NodeId(2 + s)).subscription.clone()).collect();
    let mut exempt: BTreeSet<NodeId> = BTreeSet::new();
    for flip in churn.schedule() {
        let node = NodeId(2 + flip.subscriber);
        d.sim.run_until(flip.at);
        let sub = if flip.subscribe {
            originals[flip.subscriber as usize].clone()
        } else {
            Subscription::new()
        };
        d.sim.node_mut(node).set_subscription(sub);
        exempt.insert(node);
    }

    // Ride out the burst and the corruption window.
    let deadline = burst.last_publish().max(end) + SimDuration::from_secs(30);
    d.sim.run_until(deadline);

    let faults = d.sim.fault_counters();
    println!(
        "engine: {} corruption strikes landed, {} liar messages intercepted",
        faults.state_corruptions, faults.liar_intercepts
    );
    assert!(faults.state_corruptions > 0, "the adversary must actually strike");
    assert!(faults.liar_intercepts > 0, "the liars must actually lie");

    // The verdict: all invariants restored within a bounded number of
    // gossip rounds after the windows closed.
    let verdict = self_stabilized(&mut d, &items, &exempt, 60);
    print!("{verdict}");
    assert!(verdict.stabilized, "defenses-on run must self-stabilize within budget");

    if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        println!(
            "telemetry: {} corrupt rows rejected at ingest, {} self-audit repairs, \
             {} stabilization runs recorded",
            hub.counter_total(obs::ctr::CORRUPT_ROWS_REJECTED),
            hub.counter_total(obs::ctr::SELF_AUDIT_REPAIRS),
            hub.global().ctr(obs::ctr::ORACLE_STABILIZATION_RUNS),
        );
        assert!(
            hub.counter_total(obs::ctr::CORRUPT_ROWS_REJECTED)
                + hub.counter_total(obs::ctr::SELF_AUDIT_REPAIRS)
                > 0,
            "the defenses must have done visible work"
        );
    }
    println!("ok");
}
