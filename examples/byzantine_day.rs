//! A breaking-news day with Byzantine zones in the house: while a flash
//! crowd of stories crests, three coordinated adversaries strike at once —
//! a colluding group jointly voting a fabricated log epoch into its leaf
//! zone, a split-brain pair telling every peer a different digest story,
//! and a forgery clique fabricating news items under bogus signatures.
//!
//! The signed-authority defenses (end-to-end signature verification on
//! every admission path, the publisher-signed epoch fence, misbehavior
//! quarantine) are on by default. After the windows close, the
//! self-stabilization oracle steps the system round by round and rules:
//! zero forged deliveries anywhere, every invariant restored on every
//! honest node, bounded rounds, no scar.
//!
//! Run with: `cargo run --release --example byzantine_day [seed]`

use std::collections::BTreeSet;

use baselines::FlashCrowdSpec;
use newswire::{self_stabilized, tech_news_deployment};
use simnet::{CollusionScript, CollusionSpec, FaultPlan, ForgeSpec, NodeId, SimDuration, SimTime};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xB12);
    let subscribers = 96u32;
    let mut d = tech_news_deployment(subscribers, seed);
    println!(
        "byzantine day: {subscribers} subscribers, 2 publishers, seed {seed:#x}; \
         signed-authority defenses on; letting gossip converge…"
    );
    d.settle(90);

    // The attack, declared up front: an epoch-capture cartel, a split-brain
    // pair, and a forgery clique, all inside a 120 s–240 s window. The
    // publishers (nodes 0 and 1) are spared so ground truth stays intact.
    let (start, end) = (SimTime::from_secs(120), SimTime::from_secs(240));
    let plan = FaultPlan {
        salt: 0xB12,
        collusion: vec![
            CollusionSpec {
                // Adjacent ids: the cartel shares a leaf zone, the paper's
                // captured-neighborhood scenario.
                nodes: vec![NodeId(5), NodeId(6), NodeId(7), NodeId(8)],
                start,
                end,
                mean_interval_secs: 7.0,
                script: CollusionScript::EpochCapture { publisher: 0 },
            },
            CollusionSpec {
                nodes: vec![NodeId(29), NodeId(30)],
                start,
                end,
                mean_interval_secs: 7.0,
                script: CollusionScript::SplitBrain,
            },
        ],
        forgery: vec![ForgeSpec {
            nodes: vec![NodeId(53), NodeId(54)],
            start,
            end,
            mean_interval_secs: 10.0,
            items_per_strike: 3,
            publisher: 0,
        }],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);
    println!(
        "incident: 4-node epoch-capture cartel, 2 split-brain liars, 2 forgers \
         fabricating signed-looking items, all 120 s–240 s"
    );

    // The workload does not yield to the attack: a flash crowd of stories
    // crests inside the Byzantine window.
    let burst = FlashCrowdSpec::breaking_news(SimTime::from_secs(100));
    let items: Vec<_> = (0..u64::from(burst.items))
        .map(|s| {
            newsml::NewsItem::builder(newsml::PublisherId(0), s)
                .headline(format!("flash {s}")) // distinct slugs: no revision fusion
                .category(newsml::Category::Technology)
                .body_len(900)
                .build()
        })
        .collect();
    for (at, item) in burst.schedule().into_iter().zip(items.iter()) {
        d.publish(at, item.clone());
    }

    // Ride out the burst and the Byzantine window.
    let deadline = burst.last_publish().max(end) + SimDuration::from_secs(30);
    d.sim.run_until(deadline);

    let faults = d.sim.fault_counters();
    println!(
        "engine: {} collusion strikes, {} coordinated lies intercepted, \
         {} forged items fabricated",
        faults.collusion_strikes, faults.collusion_intercepts, faults.forged_items_injected
    );
    assert!(faults.collusion_strikes > 0, "the cartel must actually strike");
    assert!(faults.collusion_intercepts > 0, "the split-brain pair must actually lie");
    assert!(faults.forged_items_injected > 0, "the forgers must actually forge");

    // The verdict: zero forged deliveries anywhere (colluders included),
    // every invariant restored on every honest node within a bounded number
    // of gossip rounds. Byzantine nodes are exempt from eventual delivery
    // only — their state was puppeted and quarantine legitimately isolates
    // them.
    let mut exempt: BTreeSet<NodeId> = plan.colluding_nodes();
    exempt.extend(plan.forging_nodes());
    let verdict = self_stabilized(&mut d, &items, &exempt, 60);
    print!("{verdict}");
    assert!(verdict.report.no_forged_delivery(), "no forged item may reach any application");
    assert!(verdict.stabilized, "defenses-on run must self-stabilize within budget");

    if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        println!(
            "telemetry: {} forged items rejected at admission, {} peers quarantined, \
             {} signed-authority epoch refusals",
            hub.counter_total(obs::ctr::NW_FORGED_REJECTS),
            hub.counter_total(obs::ctr::NW_QUARANTINES),
            hub.counter_total(obs::ctr::NW_SIGNED_EPOCH_REFUSALS),
        );
        assert!(
            hub.counter_total(obs::ctr::NW_FORGED_REJECTS) > 0,
            "the signature checks must have done visible work"
        );
        assert!(
            hub.counter_total(obs::ctr::NW_SIGNED_EPOCH_REFUSALS) > 0,
            "the signed epoch fence must have done visible work"
        );
    }
    println!("ok");
}
