//! A day of technical news (the paper's first target configuration, §10):
//! a Slashdot-like site and a boutique outlet publish a generated daily
//! trace into a NewsWire deployment, while the same trace drives the
//! centralized pull model for comparison — reproducing the §1 redundancy
//! argument end to end.
//!
//! Run with: `cargo run --release --example slashdot_day`

use baselines::simulate_polling;
use newsml::{PublisherId, PublisherProfile, TraceGenerator};
use newswire::tech_news_deployment;
use simnet::{fork, SimDuration, SimTime};

const DAY_US: u64 = 86_400_000_000;

fn main() {
    // --- the push side: NewsWire -----------------------------------------
    let mut deployment = tech_news_deployment(150, 7);
    deployment.settle(90);

    let generator = TraceGenerator::new(vec![
        PublisherProfile::slashdot(PublisherId(0)),
        PublisherProfile::boutique(PublisherId(1), "the-register", newsml::Category::Technology),
    ]);
    let mut rng = fork(7, 1);
    // One simulated hour of the daily trace keeps the example snappy; rates
    // are per-day so the trace is representative.
    let horizon_us = DAY_US / 24;
    let events = generator.generate(&mut rng, horizon_us);
    println!("trace: {} items in one simulated hour", events.len());

    let t0 = deployment.sim.now();
    for ev in &events {
        deployment.publish(t0 + SimDuration::from_micros(ev.at_us), ev.item.clone());
    }
    deployment.settle(horizon_us / 1_000_000 + 60);

    let stats = deployment.total_stats();
    let mut lat = deployment.delivery_latency_summary();
    println!("NewsWire deliveries: {}", stats.delivered);
    if !lat.is_empty() {
        println!(
            "  latency p50 {:.2}s  p99 {:.2}s  max {:.2}s",
            lat.quantile(0.5),
            lat.quantile(0.99),
            lat.max()
        );
    }
    println!(
        "  bloom false-positive deliveries: {} ({:.3}% of deliveries)",
        stats.bloom_fp_deliveries,
        100.0 * stats.bloom_fp_deliveries as f64 / stats.delivered.max(1) as f64
    );
    println!("  duplicates suppressed: {}", stats.duplicates);

    // Per-subscriber bytes: only items they wanted.
    let subs = deployment.sim.len() as u64 - 2;
    let mut sub_bytes = 0u64;
    for (id, _) in deployment.sim.iter() {
        if id.0 >= 2 {
            sub_bytes += deployment.sim.counters(id).bytes_recv;
        }
    }
    println!("  mean bytes/subscriber (incl. gossip): {}", sub_bytes / subs);

    // --- the pull side: §1's redundancy arithmetic ------------------------
    // A full week of the Slashdot-like trace against the rolling front page.
    println!("\ncentralized pull of the same site (front page of 20):");
    let mut rng2 = fork(7, 2);
    let week = TraceGenerator::new(vec![PublisherProfile::slashdot(PublisherId(0))])
        .generate(&mut rng2, 7 * DAY_US);
    let story_times: Vec<u64> = week.iter().map(|e| e.at_us).collect();
    println!("  polls/day   redundant data");
    for polls_per_day in [1u64, 2, 4, 8, 24, 48] {
        let r = simulate_polling(&story_times, DAY_US / polls_per_day, 7 * DAY_US, 20, 300);
        println!("  {:>9}   {:>6.1}%", polls_per_day, 100.0 * r.redundant_fraction());
    }
    println!("(the paper's §1: ~70% redundant at 4 polls/day — and worse for eager readers)");

    let _ = SimTime::ZERO;
}
