//! Quickstart: build a small NewsWire deployment, publish one item, and see
//! exactly the interested subscribers deliver it within seconds.
//!
//! Run with: `cargo run --release --example quickstart`

use newsml::{Category, NewsItem, PublisherId};
use newswire::tech_news_deployment;
use simnet::SimTime;

fn main() {
    // 120 subscribers + 2 publishers (Slashdot-like and a boutique tech
    // outlet), branching factor 8, deterministic seed.
    let mut deployment = tech_news_deployment(120, 42);

    // Let gossip build the zone tree, elect representatives and aggregate
    // the subscription summaries ("within tens of seconds", paper §6).
    println!("settling: gossip convergence for 60 simulated seconds…");
    deployment.settle(60);

    let item = NewsItem::builder(PublisherId(0), 0)
        .headline("NewsWire reproduction ships")
        .category(Category::Technology)
        .body_len(1800)
        .build();

    let interested = deployment.interested_nodes(&item);
    println!("{} of 122 nodes subscribe to technology from publisher 0", interested.len());

    deployment.publish(SimTime::from_secs(60), item.clone());
    deployment.settle(20);

    let delivered = deployment.delivered_nodes(&item);
    println!("delivered to {} nodes", delivered.len());
    assert_eq!(interested, delivered, "delivery set equals interest set");

    let mut lat = deployment.delivery_latency_summary();
    println!(
        "publish→deliver latency: p50 {:.2}s  p99 {:.2}s  max {:.2}s",
        lat.quantile(0.5),
        lat.quantile(0.99),
        lat.max()
    );

    let publisher = deployment.publisher_node(PublisherId(0));
    let c = deployment.sim.counters(publisher);
    println!(
        "publisher cost for this item: sent {} messages / {} bytes total this run",
        c.msgs_sent, c.bytes_sent
    );
    println!("ok");
}
