//! A deterministic partition-and-heal scenario, printed verbosely enough
//! to diff two runs bit-for-bit — CI runs this twice with the same seed
//! and compares the output, which pins down the whole stack (chaos engine,
//! gossip, forwarding, phi detection, log reconciliation) as replayable.
//!
//! The shape: a 60-second clean split along zone boundaries while the
//! newsroom keeps publishing, then a heal, then more publishing so every
//! cache high-water mark jumps past the partition hole. Only the
//! gossip-piggybacked log reconciliation can close holes that deep; the
//! run ends with the oracle checking full convergence.
//!
//! Run with: `cargo run --release --example partition_heal [seed]`

use std::collections::BTreeSet;

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{check_invariants, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::{FaultPlan, Partition, PartitionSpec, SimTime};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0x9EA1);
    let subscribers = 63u32;
    let total = subscribers as usize + 1; // publisher at node 0
    let split = total / 2;

    let mut d = DeploymentBuilder::new(subscribers, seed)
        .branching(8)
        .config(NewsWireConfig::tech_news())
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    println!("partition heal: {total} nodes, seed {seed:#x}; split {split}|{}", total - split);
    d.settle(60);

    d.sim.apply_fault_plan(&FaultPlan {
        partitions: vec![PartitionSpec {
            partition: Partition::split_at(total, split),
            start: SimTime::from_secs(80),
            heal: SimTime::from_secs(140),
        }],
        ..FaultPlan::default()
    });

    // 5 items before the split, 30 during, 20 after the heal.
    let items: Vec<NewsItem> = (0..55u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("dispatch {s}"))
                .category(Category::Technology)
                .body_len(700)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate().take(5) {
        d.publish(SimTime::from_secs(62 + 2 * i as u64), item.clone());
    }
    for (i, item) in items.iter().enumerate().skip(5).take(30) {
        d.publish(SimTime::from_secs(81 + 2 * (i as u64 - 5)), item.clone());
    }
    for (i, item) in items.iter().enumerate().skip(35) {
        d.publish(SimTime::from_secs(142 + 2 * (i as u64 - 35)), item.clone());
    }
    d.settle(240);

    let f = d.sim.fault_counters();
    println!(
        "faults: partitions {}/{} started/healed, {} drops to the cut",
        f.partitions_started, f.partitions_healed, f.drops_partition
    );
    let s = d.total_stats();
    println!(
        "protocol: {} forwards, {} acks, {} retries, {} failovers ({} phi-shortcut), \
         {} abandoned",
        s.forwards_sent,
        s.acks_received,
        s.ack_retries,
        s.ack_failovers,
        s.suspect_failovers,
        s.handoffs_abandoned
    );
    println!(
        "repair: {} served / {} items; reconcile: {} requests, {} served, {} items out \
         ({} bytes), {} items in, {} retargets",
        s.repairs_served,
        s.repair_items_sent,
        s.reconcile_requests,
        s.reconciles_served,
        s.reconcile_items_sent,
        s.reconcile_bytes_sent,
        s.reconcile_items_recv,
        s.reconcile_retargets
    );

    // Per-node digest: enough detail that any divergence between two runs
    // of the same seed shows up in a plain diff.
    for (id, node) in d.sim.iter() {
        let last_us = node
            .deliveries
            .iter()
            .map(|r| r.delivered.since(SimTime::ZERO).as_micros())
            .max()
            .unwrap_or(0);
        let log = node.article_log(PublisherId(0));
        println!(
            "node {:>2}: delivered {:>2} (repair {:>2}) log {} last_us {}",
            id.0,
            node.deliveries.len(),
            node.deliveries.iter().filter(|r| r.via_repair).count(),
            log.map(|l| l.summary().encode()).unwrap_or_else(|| "-".into()),
            last_us,
        );
    }

    let report = check_invariants(&d, &items, &BTreeSet::new());
    print!("{report}");
    report.assert_holds();
    assert!(report.converged(), "anti-entropy must fully converge the logs:\n{report}");
    println!("converged: true");
    println!("ok");
}
