//! Publisher overload and denial of service (paper §1 / abstract): "Internet
//! news sites become completely useless under overload, failing even to
//! service a small percentage of the visitors", while NewsWire "guarantees
//! delivery even in the face of publisher overload or denial of service
//! attacks".
//!
//! Side by side: a centralized pull server under a request flood versus a
//! NewsWire deployment whose publisher receives the same flood of bogus
//! publish requests.
//!
//! Run with: `cargo run --release --example overload`

use baselines::{AttackClient, FetchMode, WebClient, WebMsg, WebNode, WebServer};
use newsml::{Category, NewsItem, PublisherId};
use newswire::tech_news_deployment;
use simnet::{NetworkModel, NodeId, SimDuration, SimTime, Simulation};

fn main() {
    // --- centralized pull under flood -------------------------------------
    println!("centralized server, 20 honest pollers, 200 attackers:");
    let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(20)), 5);
    sim.add_node(WebNode::Server(WebServer::new(
        20,
        300,
        1_500,
        SimDuration::from_millis(5), // 200 req/s capacity
        50,
    )));
    for _ in 0..20 {
        sim.add_node(WebNode::Client(WebClient::new(
            NodeId(0),
            FetchMode::FullPage,
            SimDuration::from_secs(5),
        )));
    }
    for _ in 0..200 {
        sim.add_node(WebNode::Attacker(AttackClient::new(NodeId(0), SimDuration::from_millis(50))));
    }
    for s in 0..30 {
        sim.schedule_external(
            SimTime::from_secs(s * 2),
            NodeId(0),
            WebMsg::PublishStory { story: s },
        );
    }
    sim.run_until(SimTime::from_secs(60));
    let WebNode::Server(server) = sim.node(NodeId(0)) else { unreachable!() };
    println!(
        "  server: served {}  dropped {} ({:.0}% of offered load)",
        server.stats.served,
        server.stats.dropped,
        100.0 * server.stats.dropped as f64
            / (server.stats.served + server.stats.dropped).max(1) as f64
    );
    let (mut fetches, mut timeouts) = (0u64, 0u64);
    for i in 1..=20u32 {
        let WebNode::Client(c) = sim.node(NodeId(i)) else { unreachable!() };
        fetches += c.stats.fetches;
        timeouts += c.stats.timeouts;
    }
    println!(
        "  honest clients: {timeouts} of {fetches} polls timed out ({:.0}%)",
        100.0 * timeouts as f64 / fetches.max(1) as f64
    );

    // --- NewsWire under the same flood -------------------------------------
    println!("\nNewsWire, same story rate, 200 bogus publish requests/s at the publisher:");
    let mut d = tech_news_deployment(120, 5);
    d.settle(60);
    let publisher = d.publisher_node(PublisherId(0));
    // The attack: unauthenticated publish requests hammering the publisher
    // node (they fail certificate/flow checks and cost almost nothing).
    for i in 0..12_000u64 {
        let bogus = NewsItem::builder(PublisherId(9), i).headline("junk").build();
        d.sim.schedule_external(
            SimTime::from_micros(60_000_000 + i * 5_000),
            publisher,
            newswire::NewsWireMsg::PublishRequest { item: bogus, scope: None, predicate: None },
        );
    }
    // Legitimate stories continue during the attack.
    let mut items = Vec::new();
    for s in 0..10u64 {
        let item = NewsItem::builder(PublisherId(0), s)
            .headline(format!("Legit story {s}"))
            .category(Category::Technology)
            .build();
        d.publish(SimTime::from_secs(62 + s * 5), item.clone());
        items.push(item);
    }
    d.settle(80);
    let denied = d.sim.node(publisher).stats.publish_denied;
    let mut delivered = 0usize;
    let mut wanted = 0usize;
    for item in &items {
        wanted += d.interested_nodes(item).len();
        delivered += d.delivered_nodes(item).len();
    }
    println!("  bogus requests rejected: {denied}");
    println!("  legitimate deliveries: {delivered} of {wanted} interested subscriptions");
    assert_eq!(delivered, wanted, "attack must not impair delivery");
    println!("ok");
}
