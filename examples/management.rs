//! Astrolabe as an infrastructure-management service (paper §4): nodes
//! export availability, path and bandwidth attributes; aggregation functions
//! fuse them up the tree; any node can then read "real-time guidance
//! concerning which elements are in the min/max category, and hence
//! represent targets for new operations" — plus the §3 mobile-code story:
//! a new aggregation installed at one node takes effect system-wide.
//!
//! Run with: `cargo run --release --example management`

use astrolabe::management::{guidance, management_aggregations, ATTR_BANDWIDTH, ATTR_UP};
use astrolabe::{Agent, AstroNode, Config, ZoneId, ZoneLayout};
use rand::Rng;
use simnet::{fork, NetworkModel, NodeId, SimTime, Simulation};

fn main() {
    let n = 96u32;
    let layout = ZoneLayout::new(n, 8);
    let mut config = Config::standard();
    config.branching = 8;
    config.aggregations.extend(management_aggregations());

    let mut contact_rng = fork(4, 99);
    let mut attr_rng = fork(4, 7);
    let mut sim = Simulation::new(NetworkModel::default(), 4);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        let mut agent = Agent::new(i, &layout, config.clone(), contacts);
        // Each node exports its local measurements (§4).
        agent.set_local_attr(ATTR_UP, 1i64);
        let zone = layout.leaf_zone(i).path()[0];
        let bw = f64::from(zone + 1) * 50.0 + attr_rng.gen_range(0.0..20.0);
        agent.set_local_attr(ATTR_BANDWIDTH, bw);
        sim.add_node(AstroNode::new(agent));
    }
    println!("converging 60 simulated seconds…");
    sim.run_until(SimTime::from_secs(60));

    let probe = &sim.node(NodeId(5)).agent;
    let up: i64 = probe
        .root_table()
        .iter()
        .filter_map(|(_, r)| r.get(ATTR_UP).and_then(|v| v.as_i64()))
        .sum();
    println!("availability fused at the root: {up}/{n} nodes up");

    let g = guidance(probe, &ZoneId::root(), ATTR_BANDWIDTH).expect("root replicated");
    let (min_zone, min_bw) = g.min.expect("min computed");
    let (max_zone, max_bw) = g.max.expect("max computed");
    println!(
        "operational guidance: slowest region /{min_zone} ({min_bw:.0} KB/s), \
         fastest region /{max_zone} ({max_bw:.0} KB/s)"
    );
    assert!(max_bw > min_bw);

    // Mobile code: one operator node installs a brand-new aggregate; every
    // replica of every summary row eventually computes it.
    sim.node_mut(NodeId(40)).agent.install_aggregation("peak", "SELECT MAX(bw) AS bw_peak");
    sim.run_until(SimTime::from_secs(130));
    let peak: f64 = sim
        .node(NodeId(0))
        .agent
        .root_table()
        .iter()
        .filter_map(|(_, r)| r.get("bw_peak").and_then(|v| v.as_f64()))
        .fold(0.0, f64::max);
    println!("mobile aggregate installed at node 40, read at node 0: bw_peak = {peak:.0} KB/s");
    // `bw` in the summaries is the per-zone MIN (worst path); the installed
    // aggregate computes the true peak, which the built-in `bw_max` column
    // must agree with.
    let builtin_peak: f64 = sim
        .node(NodeId(0))
        .agent
        .root_table()
        .iter()
        .filter_map(|(_, r)| r.get("bw_max").and_then(|v| v.as_f64()))
        .fold(0.0, f64::max);
    assert!((peak - builtin_peak).abs() < 1e-9, "installed aggregate agrees with built-in");
    assert!(peak >= max_bw, "overall peak dominates the best per-zone minimum");
    println!("ok");
}
