//! A ten-minute operational incident, end to end (paper §9): rolling churn
//! takes a fifth of the fleet up and down for the whole window, and halfway
//! through, a sixty-second gray brownout degrades 10% of the nodes — alive
//! and still gossiping, but slow and lossy, the failure mode a crash
//! detector never flags. Stories keep publishing throughout.
//!
//! At the end, the invariant oracle delivers the verdict: no duplicate
//! deliveries, no unwanted deliveries, and every continuously-live
//! interested node got every story — the churned ones too, since they all
//! recovered and anti-entropy backfilled them.
//!
//! Run with: `cargo run --release --example chaos_day [seed]`

use std::collections::BTreeSet;

use newsml::{Category, NewsItem, PublisherId};
use newswire::{check_invariants, tech_news_deployment};
use simnet::{
    ChurnSpec, FaultPlan, GrayProfile, GraySpec, MessageChaosSpec, NodeId, SimDuration, SimTime,
};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xC4A05);
    let subscribers = 150u32;
    let mut d = tech_news_deployment(subscribers, seed);
    println!(
        "chaos day: {subscribers} subscribers, 2 publishers, seed {seed:#x}; letting gossip converge…"
    );
    d.settle(90);

    // The incident, declared up front: ten minutes of rolling churn over a
    // fifth of the fleet, a 60 s gray brownout of 10% of the nodes in the
    // middle, and a mild duplication/reordering window throughout.
    let total = subscribers + 2; // two publisher nodes at ids 0 and 1
    let churned: Vec<NodeId> = (2..total).filter(|i| i % 5 == 2).map(NodeId).collect();
    let browned: Vec<NodeId> = (2..total).filter(|i| i % 10 == 4).map(NodeId).collect();
    let plan = FaultPlan {
        salt: 0xDA7,
        churn: vec![ChurnSpec {
            nodes: churned.clone(),
            start: SimTime::from_secs(90),
            end: SimTime::from_secs(660),
            mean_up_secs: 60.0,
            mean_down_secs: 20.0,
            recover_at_end: true,
            restart: simnet::RestartMode::Freeze,
        }],
        gray: vec![GraySpec {
            nodes: browned.clone(),
            start: SimTime::from_secs(330),
            end: Some(SimTime::from_secs(390)),
            profile: GrayProfile::brownout(),
        }],
        link_cuts: vec![],
        partitions: vec![],
        message_chaos: vec![MessageChaosSpec {
            start: SimTime::from_secs(90),
            end: Some(SimTime::from_secs(660)),
            dup_prob: 0.02,
            reorder_prob: 0.10,
            reorder_jitter: SimDuration::from_millis(25),
        }],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);
    println!(
        "incident: {} nodes churning 60s-up/20s-down for 10 min, {} nodes gray for 60 s \
         at t=330, dup 2% / reorder 10% throughout",
        churned.len(),
        browned.len()
    );

    // The newsroom does not stop for the incident: a story every 20 s.
    let items: Vec<NewsItem> = (0..30u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                // One slug per item: same-slug items are revisions of one
                // story and get fused by the cache, not delivered twice.
                .headline(format!("incident minute {} story {}", s / 3, s % 3))
                .category(Category::Technology)
                .body_len(900)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + 20 * i as u64), item.clone());
    }

    // Ride out the incident plus a repair tail.
    d.settle(660);

    let faults = d.sim.fault_counters();
    let stats = d.total_stats();
    println!(
        "engine: {} crashes / {} recoveries; drops: {} gray-send, {} gray-recv, {} loss; \
         {} msgs duplicated, {} jittered",
        faults.crashes,
        faults.recoveries,
        faults.drops_gray_send,
        faults.drops_gray_recv,
        faults.drops_loss,
        faults.msgs_duplicated,
        faults.msgs_jittered
    );
    println!(
        "protocol: {} forwards, {} acks, {} retries, {} failovers, {} abandoned, \
         {} repairs served, {} repair retargets",
        stats.forwards_sent,
        stats.acks_received,
        stats.ack_retries,
        stats.ack_failovers,
        stats.handoffs_abandoned,
        stats.repairs_served,
        stats.repair_retargets
    );

    // The verdict. Churned nodes are exempt from the oracle's liveness
    // clause (they were not continuously live) but everyone — gray,
    // churned, or healthy — is held to no-dup and no-unwanted.
    let exempt: BTreeSet<NodeId> = plan.churned_nodes();
    let report = check_invariants(&d, &items, &exempt);
    print!("{report}");
    report.assert_holds();

    // And stronger: every churned node recovered, so anti-entropy must have
    // backfilled even them by now.
    let mut backfilled = 0usize;
    let mut missing = 0usize;
    for item in &items {
        for node in d.interested_nodes(item) {
            if exempt.contains(&node) {
                if d.sim.node(node).has_item(item.id) {
                    backfilled += 1;
                } else {
                    missing += 1;
                }
            }
        }
    }
    println!(
        "churned nodes: {backfilled} matching items backfilled after recovery, {missing} missing"
    );
    assert_eq!(missing, 0, "repair must backfill recovered nodes");
    println!("ok");
}
