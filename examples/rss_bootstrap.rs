//! Bootstrapping NewsWire from existing RSS feeds (paper §10): "we have
//! already developed some agents that are capable of transforming the
//! current RSS/HTML information from some publishers into message streams
//! for the system to bootstrap it."
//!
//! An [`RssIngestAgent`] polls a rolling RSS channel, deduplicates entries
//! across polls, and feeds the fresh ones into the deployment as publish
//! requests.
//!
//! Run with: `cargo run --release --example rss_bootstrap`

use newsml::{Category, PublisherId};
use newswire::{tech_news_deployment, RssChannel, RssEntry, RssIngestAgent};
use simnet::SimTime;

/// Fakes the site's RSS endpoint at poll number `poll`: a rolling window of
/// ten entries that advances by three stories per poll.
fn fetch_channel(poll: u64) -> RssChannel {
    let newest = poll * 3 + 10;
    RssChannel {
        title: "Slashdot".into(),
        entries: (newest - 10..newest)
            .rev()
            .map(|g| RssEntry {
                title: format!("Headline {g}"),
                link: format!("https://news.example/{g}"),
                guid: format!("guid-{g}"),
                category: Some("technology".into()),
            })
            .collect(),
    }
}

fn main() {
    let mut deployment = tech_news_deployment(100, 99);
    deployment.settle(60);

    let mut agent = RssIngestAgent::new(PublisherId(0), Category::Technology);
    let mut published = 0u64;
    for poll in 0..6u64 {
        let channel = fetch_channel(poll);
        // Round-trip through the XML layer, as a real agent would.
        let parsed = RssChannel::from_xml(&channel.to_xml()).expect("well-formed feed");
        let fresh = agent.ingest(&parsed);
        println!(
            "poll {poll}: {} entries on the page, {} fresh",
            parsed.entries.len(),
            fresh.len()
        );
        let at = SimTime::from_secs(60 + poll * 30);
        for item in fresh {
            deployment.publish(at, item);
            published += 1;
        }
    }
    deployment.settle(6 * 30 + 30);

    let stats = deployment.total_stats();
    println!("\ningested {} distinct stories, published {published}", agent.ingested());
    println!("NewsWire deliveries: {}", stats.delivered);
    let mut lat = deployment.delivery_latency_summary();
    if !lat.is_empty() {
        println!("latency p50 {:.2}s  max {:.2}s", lat.quantile(0.5), lat.max());
    }
    assert_eq!(agent.ingested() as u64, published, "every distinct entry published once");
    println!("ok");
}
