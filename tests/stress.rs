//! Opt-in large-scale stress tests. Excluded from the default run (they
//! take minutes); execute with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! Setting `NEWSWIRE_STRESS_QUICK=1` shrinks the deployments roughly 10×
//! so CI can exercise the same code paths in bounded time.

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::SimTime;

/// True when `NEWSWIRE_STRESS_QUICK` is set to a non-empty, non-`0` value.
fn quick() -> bool {
    std::env::var("NEWSWIRE_STRESS_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[test]
#[ignore = "multi-minute: 10k-node deployment (NEWSWIRE_STRESS_QUICK=1 shrinks it)"]
fn ten_thousand_subscribers_exact_delivery() {
    let n = if quick() { 1_000 } else { 10_000 };
    let mut d = DeploymentBuilder::new(n, 1)
        .branching(64)
        .config(NewsWireConfig::tech_news())
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .cats_per_subscriber(2)
        .build();
    d.settle(90);
    let item = NewsItem::builder(PublisherId(0), 0)
        .headline("stress")
        .category(Category::Technology)
        .build();
    d.publish(SimTime::from_secs(90), item.clone());
    d.settle(30);
    let interested = d.interested_nodes(&item);
    let delivered = d.delivered_nodes(&item);
    assert!(interested.len() > n as usize / 10, "workload sanity");
    assert_eq!(interested, delivered);
    let mut lat = d.delivery_latency_summary();
    assert!(lat.quantile(0.99) < 10.0, "p99 {}s", lat.quantile(0.99));
}

#[test]
#[ignore = "multi-minute: churn at 2k nodes (NEWSWIRE_STRESS_QUICK=1 shrinks it)"]
fn two_thousand_nodes_with_churn_converge() {
    let n = if quick() { 400 } else { 2_000u32 };
    let mut d = DeploymentBuilder::new(n, 2)
        .branching(32)
        .config(NewsWireConfig::tech_news())
        .wan(0.01)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(90);
    // 5% churn wave.
    for i in 0..100u32 {
        let v = 1 + i * 19 % n;
        d.sim.schedule_crash(SimTime::from_secs(90 + u64::from(i) / 4), simnet::NodeId(v));
        d.sim.schedule_recover(SimTime::from_secs(140 + u64::from(i) / 4), simnet::NodeId(v));
    }
    let items: Vec<_> = (0..5u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("churn {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + 5 * i as u64), item.clone());
    }
    d.settle(220);
    for item in &items {
        assert_eq!(d.interested_nodes(item), d.delivered_nodes(item), "item {}", item.id);
    }
}
