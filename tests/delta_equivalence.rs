//! Semantic equivalence of the delta wire protocol: a delta-on run must
//! deliver exactly the news a delta-off run delivers for the same seed.
//!
//! The delta protocol (CDC article deltas, gossip row diffs, compressed-wire
//! accounting) is a wire-format optimization — it changes how bytes are
//! priced and which redundant payload fragments are re-shipped, never which
//! revisions reach which subscribers. This test pins that contract under the
//! E13 chaos cocktail (severe gray nodes plus Poisson churn through the
//! publish window), where repair, reconciliation and gossip all carry real
//! weight: both arms are forced through explicit configuration (not the
//! `NEWSWIRE_DELTAS` environment switch) and must converge every interested
//! node to every story's final revision, with identical per-node outcomes.
//!
//! Mid-chaos *timing* is allowed to differ between arms (delta gossip ships
//! different message sizes, so the latency model schedules differently);
//! converged *state* is not.

use std::collections::{BTreeMap, BTreeSet};

use newsml::{Category, ItemId, NewsItem, PublisherId, PublisherProfile};
use newswire::{DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::{fork, ChurnSpec, FaultPlan, GrayProfile, GraySpec, NodeId, RestartMode, SimTime};

const N: u32 = 100;
const STORIES: u32 = 4;
const REVS: u32 = 3;

/// One arm's converged outcome, in a form directly comparable across arms.
#[derive(Debug, PartialEq, Eq)]
struct ArmState {
    /// For every story slug, every node holding it: node → latest cached
    /// revision. Restricted to interested nodes (forwarder-side caching is
    /// routing-dependent and not part of the delivery contract).
    cache: BTreeMap<String, BTreeMap<u32, u32>>,
    /// For every story slug, the latest revision *delivered to the
    /// application* per continuously-live interested node. Churned nodes
    /// clear their delivery logs mid-run, so their delivered view depends on
    /// freeze timing; their converged cache (above) is still compared.
    delivered: BTreeMap<String, BTreeMap<u32, u32>>,
}

struct Arm {
    state: ArmState,
    bytes_sent: u64,
    bytes_wire: u64,
}

/// Runs the seeded chaos workload with the delta protocol explicitly on or
/// off and extracts the converged per-node state.
fn run_arm(deltas: bool, seed: u64) -> Arm {
    let mut config = NewsWireConfig::tech_news();
    config.deltas = deltas;
    config.astrolabe.delta_gossip = deltas;
    let mut d = DeploymentBuilder::new(N, seed)
        .branching(8)
        .config(config)
        .wan(0.02)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .cats_per_subscriber(2)
        .build();
    d.sim.set_delta_accounting(deltas);
    d.settle(60);

    // The E13 cocktail, drawn from a stream independent of the delta knob so
    // both arms face the identical fault plan: 20% of subscribers severely
    // gray and a further 20% Poisson-churning through the publish window.
    let total = N + 1; // + the publisher at node 0, which is spared
    let mut pick_rng = fork(seed, 0x13);
    let mut picked = BTreeSet::new();
    let mut gray_nodes = Vec::new();
    while (gray_nodes.len() as u32) < N / 5 {
        let v = rand::Rng::gen_range(&mut pick_rng, 1..total);
        if picked.insert(v) {
            gray_nodes.push(NodeId(v));
        }
    }
    let mut churn_nodes = Vec::new();
    while (churn_nodes.len() as u32) < N / 5 {
        let v = rand::Rng::gen_range(&mut pick_rng, 1..total);
        if picked.insert(v) {
            churn_nodes.push(NodeId(v));
        }
    }
    let plan = FaultPlan {
        salt: seed,
        gray: vec![GraySpec {
            nodes: gray_nodes,
            start: SimTime::from_secs(60),
            end: Some(SimTime::from_secs(130)),
            profile: GrayProfile::severe(),
        }],
        churn: vec![ChurnSpec {
            nodes: churn_nodes.clone(),
            start: SimTime::from_secs(60),
            end: SimTime::from_secs(130),
            mean_up_secs: 30.0,
            mean_down_secs: 10.0,
            recover_at_end: true,
            restart: RestartMode::Freeze,
        }],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);
    let churned: BTreeSet<NodeId> = plan.churned_nodes().into_iter().collect();

    // A revision-heavy feed through the brownout, so revision fusion, margin
    // repair and reconciliation all re-ship bodies the delta arm can price
    // as chunk references.
    let mut items: Vec<NewsItem> = Vec::new();
    let mut prev: Vec<Option<ItemId>> = vec![None; STORIES as usize];
    for rev in 0..REVS {
        for story in 0..STORIES {
            let item = NewsItem::builder(PublisherId(0), u64::from(rev * STORIES + story))
                .headline(format!("story {story} rev {rev}"))
                .slug(format!("eq-story-{story}"))
                .category(Category::Technology)
                .revision(rev, prev[story as usize])
                .body_len(8_000 + 160 * rev)
                .build();
            prev[story as usize] = Some(item.id);
            d.publish(
                SimTime::from_secs(65 + 15 * u64::from(rev) + u64::from(story)),
                item.clone(),
            );
            items.push(item);
        }
    }
    // Ride out the chaos window (ends at t=130), then a long repair and
    // reconciliation tail so both arms reach their converged state.
    d.settle(160);

    let rev_of: BTreeMap<ItemId, (String, u32)> =
        items.iter().map(|i| (i.id, (i.slug.clone(), i.revision))).collect();
    let mut cache = BTreeMap::new();
    let mut delivered = BTreeMap::new();
    for item in items.iter().filter(|i| i.revision == REVS - 1) {
        let cache_slot: &mut BTreeMap<u32, u32> = cache.entry(item.slug.clone()).or_default();
        let deliv_slot: &mut BTreeMap<u32, u32> = delivered.entry(item.slug.clone()).or_default();
        for node in d.interested_nodes(item) {
            let nw = d.sim.node(node);
            if let Some(latest) = nw.cache.latest_for_slug(item.id.publisher, &item.slug) {
                cache_slot.insert(node.0, latest.revision);
            }
            if !churned.contains(&node) {
                let newest = nw
                    .deliveries
                    .iter()
                    .filter_map(|del| rev_of.get(&del.item))
                    .filter(|(slug, _)| *slug == item.slug)
                    .map(|(_, rev)| *rev)
                    .max();
                if let Some(rev) = newest {
                    deliv_slot.insert(node.0, rev);
                }
            }
        }
    }

    let bytes_sent = d.sim.total_counters().bytes_sent;
    #[cfg(feature = "obs")]
    let bytes_wire = {
        let hub = d.sim.telemetry();
        let total = hub.borrow().counter_total(obs::ctr::BYTES_WIRE);
        if deltas {
            let hub = hub.borrow();
            assert!(
                hub.counter_total(obs::ctr::DELTA_ITEMS_SENT) > 0,
                "delta arm sanity: CDC article deltas actually ran"
            );
            assert!(
                hub.counter_total(obs::ctr::GOSSIP_REFRESH_ROWS) > 0,
                "delta arm sanity: gossip row diffs actually ran"
            );
        }
        total
    };
    #[cfg(not(feature = "obs"))]
    let bytes_wire = 0;
    Arm { state: ArmState { cache, delivered }, bytes_sent, bytes_wire }
}

#[test]
fn delta_on_delivers_identical_state_under_chaos() {
    let full = run_arm(false, 0x0DE1_7AE0);
    let delta = run_arm(true, 0x0DE1_7AE0);

    // Neither arm's equivalence may be vacuous: every story must have
    // interested nodes, and every interested node must have converged to the
    // final revision in cache (the chaos plan recovered, repair had 160 s).
    assert_eq!(full.state.cache.len(), STORIES as usize, "every story has interested nodes");
    for (slug, nodes) in &full.state.cache {
        assert!(!nodes.is_empty(), "{slug}: interested set non-empty");
        for (&node, &rev) in nodes {
            assert_eq!(rev, REVS - 1, "{slug}: node {node} converged to the final revision");
        }
    }
    // Continuously-live interested nodes must also have *delivered* the
    // final revision — cache convergence without app delivery is a bug.
    for (slug, nodes) in &full.state.delivered {
        for (&node, &rev) in nodes {
            assert_eq!(rev, REVS - 1, "{slug}: node {node} delivered the final revision");
        }
    }

    // The contract itself: per-node converged state identical across arms.
    assert_eq!(full.state, delta.state, "delta arm must deliver exactly what the full arm does");

    // And the delta arm must have actually been cheaper on the wire: the
    // compressed accounting lane strictly undercuts its own full-priced
    // total (the full arm never tallies the lane).
    #[cfg(feature = "obs")]
    {
        assert_eq!(full.bytes_wire, 0, "delta accounting stays off in the full arm");
        assert!(delta.bytes_wire > 0, "delta arm tallies the compressed lane");
        assert!(
            delta.bytes_wire < delta.bytes_sent,
            "delta arm saves wire bytes: wire {} vs sent {}",
            delta.bytes_wire,
            delta.bytes_sent
        );
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = (full.bytes_sent, full.bytes_wire, delta.bytes_sent, delta.bytes_wire);
    }
}
