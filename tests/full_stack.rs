//! Workspace-level integration tests: exercise the public API across every
//! crate together, the way the examples do.

use newsml::{Category, NewsItem, PublisherId, PublisherProfile, TraceGenerator};
use newswire::{tech_news_deployment, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::{fork, NodeId, SimDuration, SimTime};

#[test]
fn quickstart_flow() {
    let mut d = tech_news_deployment(60, 1);
    d.settle(60);
    let item = NewsItem::builder(PublisherId(0), 0)
        .headline("integration")
        .category(Category::Technology)
        .build();
    d.publish(SimTime::from_secs(60), item.clone());
    d.settle(20);
    assert_eq!(d.interested_nodes(&item), d.delivered_nodes(&item));
}

#[test]
fn generated_trace_flows_end_to_end() {
    let mut d = tech_news_deployment(80, 2);
    d.settle(60);
    let generator = TraceGenerator::new(vec![PublisherProfile::slashdot(PublisherId(0))]);
    let mut rng = fork(2, 0);
    // Half a simulated hour of trace.
    let events = generator.generate(&mut rng, 1_800_000_000);
    let t0 = d.sim.now();
    for ev in &events {
        d.publish(t0 + SimDuration::from_micros(ev.at_us), ev.item.clone());
    }
    d.settle(1_800 + 40);
    let stats = d.total_stats();
    // Ground truth: every (item, interested node) pair delivered.
    let wanted: usize = events.iter().map(|e| d.interested_nodes(&e.item).len()).sum();
    let got: usize = events.iter().map(|e| d.delivered_nodes(&e.item).len()).sum();
    assert_eq!(wanted, got, "trace delivery incomplete (stats: {stats:?})");
    assert_eq!(stats.auth_rejects, 0);
    assert_eq!(stats.route_failures, 0);
}

#[test]
fn rss_agent_feeds_deployment() {
    use newswire::{RssChannel, RssEntry, RssIngestAgent};
    let mut d = tech_news_deployment(40, 3);
    d.settle(60);
    let mut agent = RssIngestAgent::new(PublisherId(0), Category::Technology);
    let channel = RssChannel {
        title: "feed".into(),
        entries: (0..6)
            .map(|g| RssEntry {
                title: format!("t{g}"),
                link: format!("l{g}"),
                guid: format!("g{g}"),
                category: Some("technology".into()),
            })
            .collect(),
    };
    let items = agent.ingest(&RssChannel::from_xml(&channel.to_xml()).unwrap());
    assert_eq!(items.len(), 6);
    for item in &items {
        d.publish(SimTime::from_secs(60), item.clone());
    }
    d.settle(20);
    for item in &items {
        assert_eq!(d.interested_nodes(item), d.delivered_nodes(item));
    }
}

#[test]
fn wan_loss_with_repair_eventually_delivers_everything() {
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    let mut d = DeploymentBuilder::new(120, 4)
        .branching(8)
        .config(config)
        .wan(0.03)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();
    d.settle(90);
    let items: Vec<_> = (0..8u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("wan {s}"))
                .category(Category::Technology)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(90 + i as u64), item.clone());
    }
    d.settle(120);
    for item in &items {
        let wanted = d.interested_nodes(item);
        let got = d.delivered_nodes(item);
        assert_eq!(wanted, got, "item {} incomplete under loss", item.id);
    }
}

#[test]
fn nitf_xml_is_a_faithful_wire_format_for_the_whole_model() {
    // Generate a diverse trace and round-trip every item through NITF XML.
    let generator = TraceGenerator::new(vec![
        PublisherProfile::reuters(PublisherId(0)),
        PublisherProfile::slashdot(PublisherId(1)),
    ]);
    let mut rng = fork(5, 0);
    let events = generator.generate(&mut rng, 4 * 3_600_000_000);
    assert!(!events.is_empty());
    for ev in &events {
        let xml = newsml::to_nitf_xml(&ev.item);
        let back = newsml::from_nitf_xml(&xml).unwrap();
        assert_eq!(back, ev.item);
    }
}

#[test]
fn determinism_across_full_stack() {
    let run = |seed: u64| {
        let mut d = tech_news_deployment(50, seed);
        d.settle(60);
        let item = NewsItem::builder(PublisherId(0), 0)
            .headline("det")
            .category(Category::Technology)
            .build();
        d.publish(SimTime::from_secs(60), item.clone());
        d.settle(20);
        let mut delivered = d.delivered_nodes(&item);
        delivered.sort();
        (delivered, d.sim.total_counters().msgs_sent, d.sim.total_counters().bytes_sent)
    };
    assert_eq!(run(77), run(77), "same seed must reproduce the identical run");
}

#[test]
fn crashed_region_recovers_and_catches_up() {
    let mut d = tech_news_deployment(60, 6);
    d.settle(60);
    // Take down a whole leaf zone's worth of consecutive nodes.
    let victims: Vec<NodeId> = (20..26).map(NodeId).collect();
    for &v in &victims {
        d.sim.schedule_crash(SimTime::from_secs(60), v);
    }
    let item = NewsItem::builder(PublisherId(0), 0)
        .headline("missed")
        .category(Category::Technology)
        .build();
    d.publish(SimTime::from_secs(65), item.clone());
    d.settle(30);
    for &v in &victims {
        d.sim.schedule_recover(SimTime::from_secs(95), v);
    }
    d.settle(150);
    for &v in &victims {
        if d.sim.node(v).subscription.matches(&item) {
            assert!(d.sim.node(v).has_item(item.id), "node {v} did not catch up");
        }
    }
}

#[test]
fn xmlrpc_gateway_end_to_end() {
    use newswire::xmlrpc::{dispatch, MethodCall, Value};

    let mut d = tech_news_deployment(40, 8);
    d.settle(60);

    // An external aggregator hands an article to the publisher node over
    // XML-RPC; the gateway decodes it and the host feeds the publish
    // request into the simulation.
    let item = NewsItem::builder(PublisherId(0), 0)
        .headline("Pushed over XML-RPC")
        .category(Category::Technology)
        .build();
    let call = MethodCall::new("newswire.publish", vec![Value::Str(newsml::to_nitf_xml(&item))]);
    let publisher_node = d.publisher_node(PublisherId(0));
    let mut to_publish = Vec::new();
    let resp = dispatch(d.sim.node(publisher_node), &call.to_xml(), |i| to_publish.push(i));
    assert!(resp.contains("p0:0"), "{resp}");
    let now = d.sim.now();
    for i in to_publish {
        d.publish(now, i);
    }
    d.settle(20);
    assert_eq!(d.interested_nodes(&item), d.delivered_nodes(&item));

    // A subscriber's aggregator pulls the latest items from its local cache.
    let reader = *d.interested_nodes(&item).first().expect("someone subscribed");
    let latest = MethodCall::new("newswire.latest", vec![Value::Int(5)]);
    let resp = dispatch(d.sim.node(reader), &latest.to_xml(), |_| {});
    assert!(resp.contains("Pushed over XML-RPC"), "{resp}");
}

#[test]
fn forwarding_log_traces_an_item() {
    use amcast::ForwardEvent;

    let mut d = tech_news_deployment(60, 9);
    d.settle(60);
    let item = NewsItem::builder(PublisherId(0), 0)
        .headline("traced")
        .category(Category::Technology)
        .build();
    d.publish(SimTime::from_secs(60), item.clone());
    d.settle(20);

    let msg_id = newswire::msg_id_of(item.id);
    // The publisher's log shows the accepted duty and outgoing forwards.
    let publisher = d.publisher_node(PublisherId(0));
    let log = &d.sim.node(publisher).log;
    let trace = log.trace(msg_id);
    assert!(
        trace.iter().any(|r| r.event == ForwardEvent::AcceptedDuty),
        "publisher must log its duty"
    );
    assert!(
        trace.iter().any(|r| r.event == ForwardEvent::Forwarded),
        "publisher must log hand-offs"
    );
    // Somewhere in the system the item was logged as delivered.
    let delivered_logs: usize = d
        .sim
        .iter()
        .map(|(_, n)| {
            n.log.trace(msg_id).iter().filter(|r| r.event == ForwardEvent::Delivered).count()
        })
        .sum();
    assert!(delivered_logs > 0);
}
