//! End-to-end checks of the observability layer over a full NewsWire
//! deployment: the metrics registry must agree with the ground-truth node
//! state it mirrors, and a drained telemetry snapshot must be byte-for-byte
//! deterministic for a given seed (the property CI enforces).

use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{
    tech_news_deployment, Deployment, DeploymentBuilder, NewsWireConfig, PublisherSpec,
};
use simnet::{ChurnSpec, FaultPlan, NodeId, RestartMode, SimTime};

/// A small churn-free run: settle, publish a handful of items, settle.
fn sample_run(seed: u64) -> Deployment {
    let mut d = tech_news_deployment(100, seed);
    d.settle(60);
    for seq in 0..4u64 {
        let item = NewsItem::builder(PublisherId(0), seq)
            .headline("telemetry e2e")
            .category(Category::Technology)
            .build();
        d.publish(SimTime::from_secs(60 + 2 * seq), item);
    }
    d.settle(25);
    d
}

/// The registry-derived latency summary must agree with the authoritative
/// per-node delivery-log walk on a churn-free run (no node ever cleared its
/// log, so the two views see the identical sample set).
#[test]
#[cfg(feature = "obs")]
fn registry_latency_matches_delivery_log_walk() {
    let d = sample_run(0x0B5);
    let mut walk = d.delivery_latency_summary();
    let mut reg = d.delivery_latency_from_registry().expect("obs is on and items delivered");
    assert!(!walk.is_empty(), "workload sanity: something delivered");
    assert_eq!(walk.len(), reg.len(), "sample counts differ");
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        let (w, r) = (walk.quantile(q), reg.quantile(q));
        // Registry samples are recorded in whole microseconds; the walk
        // computes the same microsecond difference, so they match exactly.
        assert!((w - r).abs() < 1e-9, "q{q}: walk {w} vs registry {r}");
    }
    assert!((walk.max() - reg.max()).abs() < 1e-9);
}

/// Registry counters mirror the authoritative `NodeStats` totals exactly:
/// neither resets while a node stays in the simulation.
#[test]
#[cfg(feature = "obs")]
fn registry_counters_match_node_stats() {
    let d = sample_run(0x0B6);
    let stats = d.total_stats();
    let hub = d.sim.telemetry();
    let hub = hub.borrow();
    use obs::ctr;
    for (label, slot, want) in [
        ("delivered", ctr::NW_DELIVERED, stats.delivered),
        ("duplicates", ctr::NW_DUPLICATES, stats.duplicates),
        ("forwards", ctr::NW_FORWARDS, stats.forwards_sent),
        ("acks", ctr::NW_ACKS_RECEIVED, stats.acks_received),
        ("repairs_served", ctr::NW_REPAIRS_SERVED, stats.repairs_served),
    ] {
        assert_eq!(hub.counter_total(slot), want, "{label} counter diverged from NodeStats");
    }
}

/// Two runs with the same seed drain byte-identical telemetry JSON and
/// trace CSV. This is the exact property the CI telemetry-determinism gate
/// checks; it must hold whether or not `obs` is enabled (obs-off drains an
/// empty but well-formed snapshot).
#[test]
fn same_seed_drains_identical_telemetry() {
    let mut a = sample_run(0xD37);
    let mut b = sample_run(0xD37);
    let ta = a.sim.drain_telemetry();
    let tb = b.sim.drain_telemetry();
    assert_eq!(ta.to_json(), tb.to_json(), "same-seed telemetry JSON diverged");
    assert_eq!(ta.events_csv(), tb.events_csv(), "same-seed trace CSV diverged");
}

/// A durable-state churn run exercising all three restart modes — the
/// `cold_restart` example's scenario in miniature. Disk writes, cold
/// restarts, incarnation bumps and recovery backfill must all replay
/// bit-for-bit: the persistence and recovery paths draw no randomness of
/// their own. This is the property the CI determinism matrix pins for the
/// `cold_restart` example.
#[test]
fn same_seed_cold_restart_run_drains_identical_telemetry() {
    fn cold_run(seed: u64) -> (String, String) {
        let mut config = NewsWireConfig::tech_news();
        config.durable_state = true;
        let mut d = DeploymentBuilder::new(30, seed)
            .branching(4)
            .config(config)
            .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
            .build();
        d.settle(60);
        let spec = |rem: u32, restart: RestartMode| ChurnSpec {
            // 30 subscribers + 1 publisher = node ids 0..=30; spare node 0.
            nodes: (1..31).filter(|i| i % 3 == rem).map(NodeId).collect(),
            start: SimTime::from_secs(60),
            end: SimTime::from_secs(180),
            mean_up_secs: 40.0,
            mean_down_secs: 15.0,
            recover_at_end: true,
            restart,
        };
        d.sim.apply_fault_plan(&FaultPlan {
            salt: 0xC0,
            churn: vec![
                spec(0, RestartMode::Freeze),
                spec(1, RestartMode::ColdDurable),
                spec(2, RestartMode::ColdAmnesia),
            ],
            gray: vec![],
            link_cuts: vec![],
            partitions: vec![],
            message_chaos: vec![],
            ..FaultPlan::default()
        });
        for seq in 0..6u64 {
            let item = NewsItem::builder(PublisherId(0), seq)
                .headline(format!("cold determinism {seq}"))
                .category(Category::Technology)
                .build();
            d.publish(SimTime::from_secs(65 + 15 * seq), item);
        }
        d.settle(200);
        let t = d.sim.drain_telemetry();
        (t.to_json(), t.events_csv())
    }
    let (ja, ca) = cold_run(0xC0DE);
    let (jb, cb) = cold_run(0xC0DE);
    assert_eq!(ja, jb, "same-seed cold-restart telemetry JSON diverged");
    assert_eq!(ca, cb, "same-seed cold-restart trace CSV diverged");
}

/// An adversary run — corruption strikes, a liar window, the
/// self-stabilization verdict — replays bit-for-bit: strike expansion,
/// per-strike RNG forks, liar interception and the defenses (ingest
/// validation, self-audit, epoch fence) draw no nondeterminism. This is
/// the property the CI determinism matrix pins for the `adversary_day`
/// example.
#[test]
fn same_seed_adversary_run_drains_identical_telemetry() {
    use newswire::self_stabilized;
    use simnet::{CorruptionOp, CorruptionSpec, LiarBehavior, LiarMode, LiarSpec};

    fn adversary_run(seed: u64) -> (String, String) {
        let mut d = tech_news_deployment(40, seed);
        d.settle(60);
        d.sim.apply_fault_plan(&FaultPlan {
            salt: 0xAD,
            corruption: vec![
                CorruptionSpec {
                    nodes: vec![NodeId(4), NodeId(19)],
                    start: SimTime::from_secs(65),
                    end: SimTime::from_secs(95),
                    mean_interval_secs: 5.0,
                    op: CorruptionOp::ZoneRows { rows: 2 },
                },
                CorruptionSpec {
                    nodes: vec![NodeId(9)],
                    start: SimTime::from_secs(65),
                    end: SimTime::from_secs(95),
                    mean_interval_secs: 9.0,
                    op: CorruptionOp::LogEpoch { entries: 3 },
                },
            ],
            liars: vec![LiarSpec {
                nodes: vec![NodeId(14)],
                start: SimTime::from_secs(65),
                end: Some(SimTime::from_secs(95)),
                behavior: LiarBehavior { mode: LiarMode::MisSummarize, prob: 1.0 },
            }],
            ..FaultPlan::default()
        });
        let items: Vec<NewsItem> = (0..6u64)
            .map(|seq| {
                NewsItem::builder(PublisherId(0), seq)
                    .headline(format!("adversary determinism {seq}"))
                    .category(Category::Technology)
                    .build()
            })
            .collect();
        for (i, item) in items.iter().enumerate() {
            d.publish(SimTime::from_secs(66 + 5 * i as u64), item.clone());
        }
        d.settle(55); // rides out the corruption window to t=115
        let verdict = self_stabilized(&mut d, &items, &std::collections::BTreeSet::new(), 30);
        assert!(verdict.stabilized, "defenses-on adversary run must stabilize");
        let t = d.sim.drain_telemetry();
        (t.to_json(), t.events_csv())
    }
    let (ja, ca) = adversary_run(0xAD5);
    let (jb, cb) = adversary_run(0xAD5);
    assert_eq!(ja, jb, "same-seed adversary telemetry JSON diverged");
    assert_eq!(ca, cb, "same-seed adversary trace CSV diverged");
    // The adversary counters and the oracle verdict are part of the
    // drained snapshot (slot coverage for the new instrumentation).
    #[cfg(feature = "obs")]
    for name in [
        "state_corruptions",
        "liar_messages_intercepted",
        "corrupt_rows_rejected",
        "self_audit_repairs",
        "oracle_stabilization_runs",
    ] {
        assert!(ja.contains(name), "drained telemetry must carry `{name}`");
    }
}

/// A Byzantine run — an epoch-capture collusion group, a split-brain
/// colluder pair, a forger, plus crafted wire-level forgeries — replays
/// bit-for-bit, and the drained snapshot carries every defense counter the
/// nightly gates read. Collusion scripting, forgery strikes, signature
/// verification, the signed epoch fence and quarantine bookkeeping draw no
/// nondeterminism of their own. This is the property the CI determinism
/// matrix pins for the `byzantine_day` example.
#[test]
fn same_seed_byzantine_run_drains_identical_telemetry() {
    use amcast::RangeSummary;
    use astrolabe::{KeyId, Signature};
    use newswire::{self_stabilized, NewsWireMsg, SignedItem};
    use simnet::{CollusionScript, CollusionSpec, ForgeSpec};
    use std::collections::BTreeSet;

    fn byzantine_run(seed: u64) -> (String, String) {
        let mut d = tech_news_deployment(40, seed);
        d.settle(60);
        let plan = FaultPlan {
            salt: 0xB2,
            collusion: vec![
                CollusionSpec {
                    nodes: vec![NodeId(5), NodeId(11), NodeId(17)],
                    start: SimTime::from_secs(65),
                    end: SimTime::from_secs(95),
                    mean_interval_secs: 6.0,
                    script: CollusionScript::EpochCapture { publisher: 0 },
                },
                CollusionSpec {
                    nodes: vec![NodeId(22), NodeId(28)],
                    start: SimTime::from_secs(65),
                    end: SimTime::from_secs(95),
                    mean_interval_secs: 6.0,
                    script: CollusionScript::SplitBrain,
                },
            ],
            forgery: vec![ForgeSpec {
                nodes: vec![NodeId(33)],
                start: SimTime::from_secs(65),
                end: SimTime::from_secs(95),
                mean_interval_secs: 8.0,
                items_per_strike: 2,
                publisher: 0,
            }],
            ..FaultPlan::default()
        };
        d.sim.apply_fault_plan(&plan);
        let items: Vec<NewsItem> = (0..6u64)
            .map(|seq| {
                NewsItem::builder(PublisherId(0), seq)
                    .headline(format!("byzantine determinism {seq}"))
                    .category(Category::Technology)
                    .build()
            })
            .collect();
        for (i, item) in items.iter().enumerate() {
            d.publish(SimTime::from_secs(66 + 5 * i as u64), item.clone());
        }
        // Crafted wire-level attacks on honest victims, so the forged-reject
        // and signed-epoch-refusal defenses fire on a deterministic schedule
        // regardless of how the emergent strikes land.
        let forged = NewsItem::builder(PublisherId(0), 77)
            .headline("FORGED byzantine dispatch")
            .category(Category::Technology)
            .build();
        d.sim.schedule_external(
            SimTime::from_secs(100),
            NodeId(7),
            NewsWireMsg::RepairReply {
                items: vec![SignedItem {
                    item: forged,
                    key: KeyId(123),
                    signature: Signature(456),
                    basis: None,
                }],
            },
        );
        d.sim.schedule_external(
            SimTime::from_secs(100),
            NodeId(3),
            NewsWireMsg::ReconcileReply {
                publisher: PublisherId(0),
                summary: RangeSummary { epoch: 100, floor: 0, next: 9, present: 9 },
                attest: None,
                items: vec![],
            },
        );
        d.settle(55); // rides out the Byzantine window to t=115
        let mut exempt: BTreeSet<NodeId> = plan.colluding_nodes();
        exempt.extend(plan.forging_nodes());
        let verdict = self_stabilized(&mut d, &items, &exempt, 30);
        assert!(verdict.stabilized, "defenses-on byzantine run must stabilize");
        let t = d.sim.drain_telemetry();
        (t.to_json(), t.events_csv())
    }
    let (ja, ca) = byzantine_run(0xB12);
    let (jb, cb) = byzantine_run(0xB12);
    assert_eq!(ja, jb, "same-seed byzantine telemetry JSON diverged");
    assert_eq!(ca, cb, "same-seed byzantine trace CSV diverged");
    // The defense counters and trace kinds are part of the drained snapshot
    // (slot coverage for the Byzantine instrumentation the nightly gate
    // reads). Only non-zero slots export, so this also proves every defense
    // actually fired in the run.
    #[cfg(feature = "obs")]
    {
        for name in [
            "collusion_strikes",
            "collusion_intercepts",
            "forged_items_injected",
            "forged_rejects",
            "quarantines",
            "signed_epoch_refusals",
            "oracle_stabilization_runs",
        ] {
            assert!(ja.contains(name), "drained telemetry must carry `{name}`");
        }
        for kind in ["collusion_strike", "forged_reject", "peer_quarantine", "signed_epoch_refusal"]
        {
            assert!(ca.contains(kind), "trace CSV must carry `{kind}` records");
        }
    }
    let _ = (ca, cb);
}

/// A trust-root rotation run — a stolen-key window straddling the
/// revocation, a Sybil identity burst, admission control on — replays
/// bit-for-bit, and the drained snapshot carries every counter and trace
/// kind the E21 nightly gate reads. Strike expansion, rotation adoption,
/// the admission-path fences, retroactive purges and probation bookkeeping
/// draw no nondeterminism of their own. This is the property the CI
/// determinism matrix pins for the `key_compromise_day` example.
#[test]
fn same_seed_trust_rotation_run_drains_identical_telemetry() {
    use newswire::self_stabilized;
    use simnet::{KeyCompromiseSpec, SybilSpec};
    use std::collections::BTreeSet;

    fn trust_run(seed: u64) -> (String, String) {
        let mut config = NewsWireConfig::tech_news();
        config.admission = true;
        let mut d = DeploymentBuilder::new(40, seed)
            .branching(4)
            .config(config)
            .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
            .build();
        d.settle(60);
        let plan = FaultPlan {
            salt: 0x15,
            key_compromise: vec![KeyCompromiseSpec {
                nodes: vec![NodeId(6), NodeId(21)],
                start: SimTime::from_secs(70),
                end: SimTime::from_secs(110),
                mean_interval_secs: 4.0,
                items_per_strike: 2,
                attest_bump: 1,
                publisher: 0,
            }],
            sybil: vec![SybilSpec {
                nodes: vec![NodeId(13)],
                start: SimTime::from_secs(65),
                end: SimTime::from_secs(110),
                mean_interval_secs: 5.0,
                identities_per_strike: 6,
                publisher: 0,
            }],
            ..FaultPlan::default()
        };
        d.sim.apply_fault_plan(&plan);
        let items: Vec<NewsItem> = (0..6u64)
            .map(|seq| {
                NewsItem::builder(PublisherId(0), seq)
                    .headline(format!("trust determinism {seq}"))
                    .category(Category::Technology)
                    .build()
            })
            .collect();
        for (i, item) in items.iter().enumerate() {
            d.publish(SimTime::from_secs(62 + i as u64), item.clone());
        }
        // Revocation lands mid-window: the fleet adopts while the thieves
        // keep striking, so the admission-path fences fire on live traffic.
        d.schedule_rotation(SimTime::from_secs(90), PublisherId(0), 3);
        d.settle(90); // rides out the compromise window to t=150
        let mut exempt: BTreeSet<NodeId> = plan.compromised_nodes();
        exempt.extend(plan.sybil_nodes());
        let verdict = self_stabilized(&mut d, &items, &exempt, 30);
        assert!(verdict.stabilized, "defenses-on trust-rotation run must stabilize");
        assert!(
            verdict.report.no_post_revocation_delivery(),
            "no forged delivery may postdate adoption"
        );
        let t = d.sim.drain_telemetry();
        (t.to_json(), t.events_csv())
    }
    let (ja, ca) = trust_run(0x7205);
    let (jb, cb) = trust_run(0x7205);
    assert_eq!(ja, jb, "same-seed trust-rotation telemetry JSON diverged");
    assert_eq!(ca, cb, "same-seed trust-rotation trace CSV diverged");
    // The rotation counters and trace kinds are part of the drained
    // snapshot (slot coverage for the E21 instrumentation the nightly gate
    // reads). Only non-zero slots export, so this also proves every
    // defense actually fired in the run.
    #[cfg(feature = "obs")]
    {
        for name in [
            "key_compromise_strikes",
            "sybil_joins_attempted",
            "sybil_joins_refused",
            "cert_revocations_seen",
            "revoked_key_rejects",
            "retro_purged_items",
            "probation_holds",
        ] {
            assert!(ja.contains(name), "drained telemetry must carry `{name}`");
        }
        for kind in [
            "key_compromise_strike",
            "sybil_strike",
            "cert_revoked",
            "revoked_key_reject",
            "retro_purge",
            "probation_hold",
        ] {
            assert!(ca.contains(kind), "trace CSV must carry `{kind}` records");
        }
    }
    let _ = (ca, cb);
}

/// Draining is destructive: a second drain yields an empty snapshot, while
/// `snapshot_telemetry` leaves state in place.
#[test]
#[cfg(feature = "obs")]
fn drain_resets_snapshot_does_not() {
    let mut d = sample_run(0xD38);
    let snap1 = d.sim.snapshot_telemetry();
    let snap2 = d.sim.snapshot_telemetry();
    assert_eq!(snap1.to_json(), snap2.to_json(), "snapshot must be non-destructive");
    let drained = d.sim.drain_telemetry();
    assert_eq!(drained.to_json(), snap1.to_json(), "drain returns what snapshot saw");
    let after = d.sim.snapshot_telemetry();
    assert!(after.events.is_empty(), "drain must clear the trace ring");
}
